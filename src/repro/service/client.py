"""Stdlib HTTP client for the ``repro serve`` daemon.

Used by ``repro submit`` / ``repro jobs`` and by the tests; speaks the
JSON API of :mod:`repro.service.server` over :mod:`urllib` — no
third-party dependencies, matching the daemon's stdlib HTTP server.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request

from ..budget import Deadline
from .jobstore import TERMINAL_JOB_STATES

__all__ = [
    "ServiceClient",
    "ServiceTimeout",
    "ServiceRequestError",
    "service_url",
]


class ServiceTimeout(TimeoutError):
    """``wait`` ran out of budget before the job reached a target state."""


class ServiceRequestError(RuntimeError):
    """The daemon rejected a request (4xx/5xx); ``.status`` has the code."""

    def __init__(self, status, message):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


def service_url(directory):
    """Read the daemon's discovery beacon from a service directory."""
    path = os.path.join(directory, "service.json")
    try:
        with open(path) as handle:
            return json.load(handle)["url"]
    except (OSError, ValueError, KeyError):
        raise ServiceRequestError(
            0, f"no running service beacon at {path}; is `repro serve` up?"
        )


class ServiceClient:
    """Thin JSON-over-HTTP wrapper around one daemon's API."""

    def __init__(self, url, timeout=30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(self, method, path, payload=None):
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except (ValueError, OSError):
                message = str(exc)
            raise ServiceRequestError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceRequestError(
                0, f"cannot reach service at {self.url}: {exc.reason}"
            ) from None

    # -- API verbs -----------------------------------------------------
    def health(self):
        return self._request("GET", "/health")

    def submit(self, job):
        """POST one job payload; returns the accepted job's status."""
        return self._request("POST", "/jobs", payload=job)

    def jobs(self):
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id):
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id):
        return self._request("POST", f"/jobs/{job_id}/cancel", payload={})

    def wait(self, job_id, timeout=120.0, poll=0.2,
             states=TERMINAL_JOB_STATES):
        """Poll until the job reaches one of ``states``; returns status.

        ``timeout`` is a plain-seconds budget (or any
        :meth:`repro.budget.Deadline.of` coercible); raises
        :class:`ServiceTimeout` when it runs dry first.
        """
        deadline = Deadline.of(timeout)
        while True:
            status = self.job(job_id)
            if status["state"] in states:
                return status
            if deadline.expired():
                raise ServiceTimeout(
                    f"job {job_id} still {status['state']!r} after "
                    f"{deadline.limit}s (waiting for {list(states)})"
                )
            remaining = deadline.remaining()
            if remaining is None:
                time.sleep(poll)
            else:
                time.sleep(min(poll, max(remaining, 0.01)))
