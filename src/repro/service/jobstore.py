"""Durable SQLite job ledger for the ``repro serve`` daemon.

One row per submitted job.  The store follows the same derived-state
discipline as the cell queue (:mod:`repro.experiments.queue`): a job's
*state* is a pure function of its cells' published records and queue
tasks, recomputed by the daemon's reconcile pass — the stored state is
a cache of that derivation, never an independent source of truth.  The
two exceptions are the terminal states a human (or the deadline
enforcer) assigns directly: once a job is terminal it stays terminal,
so a record trickling in from a straggler worker cannot resurrect a
cancelled job.

States::

    submitted   accepted, no cell has produced a record yet
    running     at least one cell finished or holds a lease
    done        every cell has a terminal ok/timeout record
    failed      at least one cell was quarantined (poisoned)
    expired     the job's Deadline passed; pending cells were cancelled
    cancelled   a client cancelled the job before its deadline

``done``/``failed``/``expired``/``cancelled`` are terminal.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "JOBS_FILENAME",
    "JOB_STATES",
    "TERMINAL_JOB_STATES",
    "Job",
    "JobStore",
    "derive_job_state",
]

#: Name of the job database inside a service directory.
JOBS_FILENAME = "jobs.sqlite"

JOB_STATES = (
    "submitted", "running", "done", "failed", "expired", "cancelled",
)

#: States a job never leaves.
TERMINAL_JOB_STATES = ("done", "failed", "expired", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id       TEXT PRIMARY KEY,
    artifact     TEXT NOT NULL,
    options      TEXT NOT NULL,
    state        TEXT NOT NULL DEFAULT 'submitted',
    submitted_at REAL NOT NULL,
    deadline     REAL,
    cells        TEXT NOT NULL,
    finished_at  REAL,
    error        TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state);
"""


@dataclass(frozen=True)
class Job:
    """One accepted job, as stored in the ledger."""

    job_id: str
    artifact: str
    options: dict
    state: str
    submitted_at: float
    deadline: float = None     # absolute wall-clock epoch, None = no limit
    cells: tuple = ()          # job-prefixed cell ids, expansion order
    finished_at: float = None
    error: str = None

    @property
    def terminal(self):
        return self.state in TERMINAL_JOB_STATES

    def to_dict(self):
        return {
            "job_id": self.job_id,
            "artifact": self.artifact,
            "options": dict(self.options),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "deadline": self.deadline,
            "cells": list(self.cells),
            "finished_at": self.finished_at,
            "error": self.error,
        }


def _job_id(seq, artifact, options):
    """``job-<seq>-<digest>``: ordered, human-scannable, collision-free.

    ``seq`` alone guarantees uniqueness; the content digest makes two
    ledgers comparable at a glance.
    """
    payload = json.dumps([artifact, options], sort_keys=True, default=list)
    digest = hashlib.sha256(payload.encode()).hexdigest()[:8]
    return f"job-{seq:06d}-{digest}"


class JobStore:
    """CRUD over one service's ``jobs.sqlite``.

    Mirrors :class:`repro.experiments.queue.CellQueue`'s transaction
    discipline (one ``BEGIN IMMEDIATE`` per public method) but opens a
    fresh connection per call: the store is low-traffic and the HTTP
    handlers hit it from arbitrary server threads.
    """

    def __init__(self, directory, clock=time.time):
        self.directory = directory
        self.path = os.path.join(directory, JOBS_FILENAME)
        self._clock = clock

    @contextmanager
    def _txn(self):
        os.makedirs(self.directory, exist_ok=True)
        conn = sqlite3.connect(self.path, timeout=30.0, isolation_level=None)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.executescript(_SCHEMA)
            conn.execute("BEGIN IMMEDIATE")
            try:
                yield conn
                conn.execute("COMMIT")
            except BaseException:
                try:
                    conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                raise
        finally:
            conn.close()

    def _now(self, now=None):
        return self._clock() if now is None else now

    # -- writes --------------------------------------------------------
    def submit(self, artifact, options, cells, deadline=None, now=None):
        """Persist a new job; returns the stored :class:`Job`."""
        now = self._now(now)
        with self._txn() as conn:
            row = conn.execute(
                "SELECT COALESCE(MAX(rowid), 0) + 1 FROM jobs"
            ).fetchone()
            job_id = _job_id(row[0], artifact, options)
            conn.execute(
                "INSERT INTO jobs (job_id, artifact, options, state, "
                "submitted_at, deadline, cells) VALUES "
                "(?, ?, ?, 'submitted', ?, ?, ?)",
                (job_id, artifact,
                 json.dumps(options, sort_keys=True, default=list),
                 now, deadline, json.dumps(list(cells))),
            )
        return Job(
            job_id=job_id, artifact=artifact, options=dict(options),
            state="submitted", submitted_at=now, deadline=deadline,
            cells=tuple(cells),
        )

    def set_state(self, job_id, state, error=None, now=None):
        """Move a job to ``state``; terminal states are immutable.

        Returns the updated :class:`Job`, or ``None`` for an unknown
        id.  A no-op (already terminal, or already in ``state``) returns
        the stored job unchanged — callers need not pre-check.
        """
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        now = self._now(now)
        with self._txn() as conn:
            row = conn.execute(
                "SELECT state FROM jobs WHERE job_id=?", (job_id,)
            ).fetchone()
            if row is None:
                return None
            current = row[0]
            if current in TERMINAL_JOB_STATES or current == state:
                return self._get(conn, job_id)
            finished = now if state in TERMINAL_JOB_STATES else None
            conn.execute(
                "UPDATE jobs SET state=?, finished_at=?, error=? "
                "WHERE job_id=?",
                (state, finished, error, job_id),
            )
            return self._get(conn, job_id)

    # -- reads ---------------------------------------------------------
    def get(self, job_id):
        with self._txn() as conn:
            return self._get(conn, job_id)

    def jobs(self, state=None):
        query = ("SELECT job_id, artifact, options, state, submitted_at, "
                 "deadline, cells, finished_at, error FROM jobs")
        args = ()
        if state is not None:
            query += " WHERE state=?"
            args = (state,)
        with self._txn() as conn:
            rows = conn.execute(query + " ORDER BY rowid", args).fetchall()
        return [self._job(row) for row in rows]

    def live_jobs(self):
        """Jobs not yet terminal, submission order."""
        return [job for job in self.jobs() if not job.terminal]

    def counts(self):
        with self._txn() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        counts.update(dict(rows))
        return counts

    @staticmethod
    def _get(conn, job_id):
        row = conn.execute(
            "SELECT job_id, artifact, options, state, submitted_at, "
            "deadline, cells, finished_at, error FROM jobs WHERE job_id=?",
            (job_id,),
        ).fetchone()
        return None if row is None else JobStore._job(row)

    @staticmethod
    def _job(row):
        (job_id, artifact, options, state, submitted_at, deadline, cells,
         finished_at, error) = row
        return Job(
            job_id=job_id, artifact=artifact, options=json.loads(options),
            state=state, submitted_at=submitted_at, deadline=deadline,
            cells=tuple(json.loads(cells)), finished_at=finished_at,
            error=error,
        )


def derive_job_state(job, cell_states):
    """The job state implied by its cells — the reconcile function.

    ``cell_states`` maps each of the job's cell ids to one of the
    queue/record states: ``pending``/``leased`` (live), ``ok``/
    ``timeout`` (finished), ``poisoned`` (failed), ``cancelled``, or
    ``missing`` (no task, no record — treated as live work the daemon
    still owes the queue).  Terminal precedence once no live cells
    remain: any cancelled cell marks the job ``expired`` (cancellation
    only happens via deadline/client action), else any poisoned cell
    marks it ``failed``, else ``done``.
    """
    if job.terminal:
        return job.state
    if not job.cells:
        # Mid-submit placeholder: the ledger row exists but the cell
        # list has not landed yet (jobs never legitimately expand to
        # zero cells; validation rejects those before submission).
        return "submitted"
    states = [cell_states.get(cell, "missing") for cell in job.cells]
    live = [s for s in states if s in ("pending", "leased", "missing")]
    if live:
        started = any(s not in ("pending", "missing") for s in states)
        return "running" if started else "submitted"
    if any(s == "cancelled" for s in states):
        return "expired"
    if any(s == "poisoned" for s in states):
        return "failed"
    return "done"
