"""Shared experiment harness: locked-circuit preparation and table output.

Every benchmark in ``benchmarks/`` regenerates one paper artifact (table
or figure) through the row-builder functions in
:mod:`repro.experiments.tables`; this module holds the common machinery —
deterministic preparation of (host, locked, resynthesized) triples,
wall-clock measurement, and paper-style row formatting.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..benchgen.registry import resolve_scale, scaled_key_width
from ..corpus import get_source, parse_circuit_id, qualify
from ..locking import TECHNIQUES, TECHNIQUE_EXTRA_PARAMS
from ..synth.resynth import resynthesize
from . import prepstore

__all__ = [
    "PreparedCircuit",
    "PrepCache",
    "prepare_locked",
    "technique_params",
    "prep_cache_info",
    "clear_prep_cache",
    "prep_stats",
    "format_table",
    "Timer",
]


@dataclass
class PreparedCircuit:
    """A host + locked + synthesized triple ready for attacks.

    ``circuit_id`` is the qualified id the host came from
    (``"gen:b14_C"``, ``"corpus:c432"``), ``source`` its registry prefix,
    and ``digest`` the host's content digest from :mod:`repro.corpus` —
    together the provenance triple that campaign cell records persist.
    ``scale`` is the resolved scale for scaled sources and ``None`` for
    fixed corpus netlists.
    """

    spec: object
    locked: object  # LockedCircuit ground truth
    netlist: object  # attack view: resynthesized locked netlist
    scale: str
    key_width: int
    prep_elapsed: float = 0.0
    circuit_id: str = None
    source: str = None
    digest: str = None

    def provenance(self):
        """JSON-safe circuit identity carried by cell records."""
        return {
            "id": self.circuit_id,
            "source": self.source,
            "digest": self.digest,
        }


class Timer:
    """Context manager measuring wall-clock seconds into ``.elapsed``."""

    def __enter__(self):
        self._start = time.monotonic()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc):
        self.elapsed = time.monotonic() - self._start
        return False


class PrepCache:
    """Bounded per-process LRU cache for :class:`PreparedCircuit` triples.

    Replaces the old module-global dict, which had two problems once
    preparations started running inside campaign worker pools:

    * **Lifetime** — it grew without bound for the life of the process; a
      long campaign sweep over circuits x techniques x seeds kept every
      prepared netlist (plus its compiled engine) alive forever.
    * **Fork/spawn safety** — a ``fork``-started worker inherited the
      parent's whole cache (multiplying resident memory per worker), and
      the prepared objects carry lazily-mutated state (compiled-engine
      and refutation-stimulus caches) that should stay process-local.

    Entries are therefore keyed to ``os.getpid()``: the first access in a
    new process (forked child or spawn-fresh import) starts from an empty
    table, and the least-recently-used entry is evicted once ``capacity``
    is exceeded.
    """

    def __init__(self, capacity=None):
        if capacity is None:
            capacity = int(os.environ.get("REPRO_PREP_CACHE_CAPACITY", "16"))
        self.capacity = max(1, capacity)
        self._pid = None
        self._data = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _entries(self):
        pid = os.getpid()
        if pid != self._pid:
            self._data = OrderedDict()
            self._pid = pid
            self.hits = self.misses = self.evictions = 0
        return self._data

    def get(self, key):
        data = self._entries()
        value = data.get(key)
        if value is None:
            self.misses += 1
            return None
        data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value):
        data = self._entries()
        data[key] = value
        data.move_to_end(key)
        while len(data) > self.capacity:
            data.popitem(last=False)
            self.evictions += 1

    def clear(self):
        self._entries().clear()

    def __len__(self):
        return len(self._entries())

    def info(self):
        return {
            "pid": os.getpid(),
            "size": len(self._entries()),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


_PREP_CACHE = PrepCache()

#: Resynthesis recipe applied by :func:`prepare_locked`; part of the
#: disk-store content hash so a recipe change invalidates old entries.
_RESYNTH_RECIPE = {"effort": 2}


def prep_cache_info():
    """Statistics of the process-local preparation cache."""
    return _PREP_CACHE.info()


def clear_prep_cache():
    _PREP_CACHE.clear()


def prep_stats():
    """Flat preparation-cache counters: per-process L1 + disk store.

    This is what campaign cells snapshot before/after execution to
    attach per-cell cache deltas to their persisted records.
    """
    l1 = _PREP_CACHE.info()
    stats = {
        "l1_hits": l1["hits"],
        "l1_misses": l1["misses"],
        "l1_evictions": l1["evictions"],
    }
    stats.update(prepstore.prep_store().stats())
    return stats


def technique_params(technique, h=None, params=None):
    """Normalize a technique's extra locking parameters to a full dict.

    Exactly the parameters declared in
    :data:`~repro.locking.TECHNIQUE_EXTRA_PARAMS` come back, each at its
    supplied value or its declared default; parameters a technique does
    not declare are dropped (so ``prepare_locked("...", "sarlock", h=3)``
    neither perturbs sarlock's cache key nor reaches its lock function).
    ``h`` is the legacy spelling of ``params={"h": ...}`` and loses to an
    explicit ``params`` entry.
    """
    declared = TECHNIQUE_EXTRA_PARAMS.get(technique, {})
    supplied = dict(params or {})
    if h is not None:
        supplied.setdefault("h", h)
    return {name: supplied.get(name, default) for name, default in declared.items()}


def _prep_key(circuit_name, technique, scale, seed, synth_seed, resynth, h,
              digest=None, params=None, key_width=None):
    """Canonical cache key covering every argument that changes the output.

    ``circuit_name`` is qualified (bare names alias to ``gen:``) as a
    pure string operation — no registry lookup happens here, so keys can
    be built for circuits that are not (yet) resolvable.  ``digest`` is
    the circuit's content digest when the caller has resolved one; extra
    locking parameters are normalized per technique via
    :func:`technique_params`, so equivalent preparations share one entry
    while *differing* ones (different ``resynth``, ``h``/``cubes``, or
    ``synth_seed``) can never alias.  ``key_width`` is the caller's
    explicit request (``None`` = derive from the spec + scale as always).
    """
    extras = tuple(sorted(technique_params(technique, h=h, params=params).items()))
    return (qualify(circuit_name), digest, technique, scale, seed, synth_seed,
            bool(resynth), extras, key_width)


def _store_params(key, key_width):
    """The JSON-safe parameter dict hashed into the disk-store key."""
    (qualified, digest, technique, scale, seed, synth_seed, resynth, extras,
     requested_width) = key
    params = {
        "circuit": qualified,
        "source": parse_circuit_id(qualified).source,
        "digest": digest,
        "technique": technique,
        "scale": scale,
        "seed": seed,
        "synth_seed": synth_seed,
        "resynth": resynth,
        "params": dict(extras),
        "key_width": key_width,
        "recipe": _RESYNTH_RECIPE,
    }
    # Only present when a caller overrode the derived width, so every
    # pre-existing store entry keeps its hash.
    if requested_width is not None:
        params["key_width_override"] = requested_width
    return params


def prepare_locked(
    circuit_name,
    technique,
    scale=None,
    seed=0,
    synth_seed=1,
    resynth=True,
    h=None,
    params=None,
    cache=True,
    store=None,
    key_width=None,
):
    """Resolve, lock, and resynthesize one benchmark circuit.

    Mirrors the paper's setup: hosts locked at RTL, then synthesized "to
    break the regular structure of the locking scheme".  ``circuit_name``
    is any :mod:`repro.corpus` reference — a qualified id
    (``"corpus:c432"``) or a bare name (``"c6288"``, aliased to
    ``gen:``).  Hosts come from the circuit-source registry; the source's
    content digest is part of both cache keys, so editing a corpus
    netlist (or changing the generator) invalidates its cached
    preparations.  Scale resolution applies to scaled (``gen:``) sources
    only; corpus netlists are fixed artifacts and prepare identically
    under every ``REPRO_SCALE``.

    Deterministic in all arguments; results are memoized per process in
    a bounded LRU (:class:`PrepCache`, the L1) over a cross-process,
    cross-campaign disk store (:mod:`repro.experiments.prepstore`, the
    L2).  ``params`` supplies technique-specific extras (``{"h": 2}``,
    ``{"cubes": 3}``; see :func:`technique_params`); ``h`` remains as the
    legacy spelling for SFLL-HD.

    ``store`` selects the L2: ``None`` uses the env-configured default,
    ``False`` disables it for this call, and a
    :class:`~repro.experiments.prepstore.PrepStore` instance pins one
    explicitly.  With the store active, even a cold compute is round-
    tripped through the store's canonical serialization, so cold and
    warm calls return structurally identical netlists.

    ``key_width`` explicitly requests a lock width (service jobs submit
    one); ``None`` derives it from the spec + scale as before.  Either
    way the width is clamped to the host's input count minus one and
    rounded down to even, so the effective width is on
    ``PreparedCircuit.key_width``, not necessarily the request.
    """
    cid = parse_circuit_id(circuit_name)
    source = get_source(cid.source)
    scale = resolve_scale(scale) if source.scaled else None
    circuit_digest = source.digest(cid.name, scale=scale, seed=seed)
    if key_width is not None:
        key_width = int(key_width)
        if key_width < 2:
            raise ValueError(f"key_width must be >= 2, got {key_width}")
    key = _prep_key(cid.qualified, technique, scale, seed, synth_seed, resynth,
                    h, digest=circuit_digest, params=params,
                    key_width=key_width)
    if cache:
        cached = _PREP_CACHE.get(key)
        if cached is not None:
            return cached

    if store is None:
        store = prepstore.prep_store()
    elif store is False:
        store = None
    spec = source.spec(cid.name)
    digest = None
    if store is not None and store.enabled:
        digest = prepstore.store_key(_store_params(key, spec.key_width))
        prepared = store.get(digest)
        if prepared is not None:
            if cache:
                _PREP_CACHE.put(key, prepared)
            return prepared

    start = time.monotonic()
    host = source.load(cid.name, scale=scale, seed=seed)
    if key_width is not None:
        width = key_width
    elif source.scaled and scale != "paper":
        width = scaled_key_width(spec, scale)
    else:
        width = spec.key_width
    width = min(width, len(host.inputs) - 1)
    width -= width % 2

    extras = technique_params(technique, h=h, params=params)
    locked = TECHNIQUES[technique](host, width, seed=seed, **extras)

    netlist = locked.circuit
    if resynth:
        netlist = resynthesize(netlist, seed=synth_seed, effort=2)
    prepared = PreparedCircuit(
        spec=spec,
        locked=locked,
        netlist=netlist,
        scale=scale,
        key_width=locked.key_width,
        prep_elapsed=time.monotonic() - start,
        circuit_id=cid.qualified,
        source=cid.source,
        digest=circuit_digest,
    )
    if digest is not None:
        # Publish and adopt the canonical round-tripped form, so this
        # cold path returns exactly what a warm hit will return.
        prepared = store.put(digest, prepared, _store_params(key, spec.key_width))
    if cache:
        _PREP_CACHE.put(key, prepared)
    return prepared


def format_table(title, header, rows, note=None):
    """Render rows as an aligned text table (paper-style)."""
    widths = [len(h) for h in header]
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append(note)
    return "\n".join(lines)
