"""Shared experiment harness: locked-circuit preparation and table output.

Every benchmark in ``benchmarks/`` regenerates one paper artifact (table
or figure) through the row-builder functions in
:mod:`repro.experiments.tables`; this module holds the common machinery —
deterministic preparation of (host, locked, resynthesized) triples,
wall-clock measurement, and paper-style row formatting.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..benchgen.registry import generate_host, resolve_scale, scaled_key_width, SPECS
from ..locking import TECHNIQUES
from ..synth.resynth import resynthesize
from . import prepstore

__all__ = [
    "PreparedCircuit",
    "PrepCache",
    "prepare_locked",
    "prep_cache_info",
    "clear_prep_cache",
    "prep_stats",
    "format_table",
    "Timer",
]


@dataclass
class PreparedCircuit:
    """A host + locked + synthesized triple ready for attacks."""

    spec: object
    locked: object  # LockedCircuit ground truth
    netlist: object  # attack view: resynthesized locked netlist
    scale: str
    key_width: int
    prep_elapsed: float = 0.0


class Timer:
    """Context manager measuring wall-clock seconds into ``.elapsed``."""

    def __enter__(self):
        self._start = time.monotonic()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc):
        self.elapsed = time.monotonic() - self._start
        return False


class PrepCache:
    """Bounded per-process LRU cache for :class:`PreparedCircuit` triples.

    Replaces the old module-global dict, which had two problems once
    preparations started running inside campaign worker pools:

    * **Lifetime** — it grew without bound for the life of the process; a
      long campaign sweep over circuits x techniques x seeds kept every
      prepared netlist (plus its compiled engine) alive forever.
    * **Fork/spawn safety** — a ``fork``-started worker inherited the
      parent's whole cache (multiplying resident memory per worker), and
      the prepared objects carry lazily-mutated state (compiled-engine
      and refutation-stimulus caches) that should stay process-local.

    Entries are therefore keyed to ``os.getpid()``: the first access in a
    new process (forked child or spawn-fresh import) starts from an empty
    table, and the least-recently-used entry is evicted once ``capacity``
    is exceeded.
    """

    def __init__(self, capacity=None):
        if capacity is None:
            capacity = int(os.environ.get("REPRO_PREP_CACHE_CAPACITY", "16"))
        self.capacity = max(1, capacity)
        self._pid = None
        self._data = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _entries(self):
        pid = os.getpid()
        if pid != self._pid:
            self._data = OrderedDict()
            self._pid = pid
            self.hits = self.misses = self.evictions = 0
        return self._data

    def get(self, key):
        data = self._entries()
        value = data.get(key)
        if value is None:
            self.misses += 1
            return None
        data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value):
        data = self._entries()
        data[key] = value
        data.move_to_end(key)
        while len(data) > self.capacity:
            data.popitem(last=False)
            self.evictions += 1

    def clear(self):
        self._entries().clear()

    def __len__(self):
        return len(self._entries())

    def info(self):
        return {
            "pid": os.getpid(),
            "size": len(self._entries()),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


_PREP_CACHE = PrepCache()

#: Resynthesis recipe applied by :func:`prepare_locked`; part of the
#: disk-store content hash so a recipe change invalidates old entries.
_RESYNTH_RECIPE = {"effort": 2}


def prep_cache_info():
    """Statistics of the process-local preparation cache."""
    return _PREP_CACHE.info()


def clear_prep_cache():
    _PREP_CACHE.clear()


def prep_stats():
    """Flat preparation-cache counters: per-process L1 + disk store.

    This is what campaign cells snapshot before/after execution to
    attach per-cell cache deltas to their persisted records.
    """
    l1 = _PREP_CACHE.info()
    stats = {
        "l1_hits": l1["hits"],
        "l1_misses": l1["misses"],
        "l1_evictions": l1["evictions"],
    }
    stats.update(prepstore.prep_store().stats())
    return stats


def _prep_key(circuit_name, technique, scale, seed, synth_seed, resynth, h):
    """Canonical cache key covering every argument that changes the output.

    ``h`` only reaches the locking function for SFLL-HD, where ``None``
    means the default distance 1 — both facts are normalized here so
    equivalent preparations share one entry while *differing* ones
    (different ``resynth``, ``h``, or ``synth_seed``) can never alias.
    """
    eff_h = (1 if h is None else h) if technique == "sfll_hd" else None
    return (circuit_name, technique, scale, seed, synth_seed, bool(resynth), eff_h)


def _store_params(key):
    """The JSON-safe parameter dict hashed into the disk-store key."""
    circuit_name, technique, scale, seed, synth_seed, resynth, eff_h = key
    return {
        "circuit": circuit_name,
        "technique": technique,
        "scale": scale,
        "seed": seed,
        "synth_seed": synth_seed,
        "resynth": resynth,
        "h": eff_h,
        "key_width": SPECS[circuit_name].key_width,
        "recipe": _RESYNTH_RECIPE,
    }


def prepare_locked(
    circuit_name,
    technique,
    scale=None,
    seed=0,
    synth_seed=1,
    resynth=True,
    h=None,
    cache=True,
    store=None,
):
    """Generate, lock, and resynthesize one benchmark circuit.

    Mirrors the paper's setup: hosts locked at RTL, then synthesized "to
    break the regular structure of the locking scheme".  Deterministic in
    all arguments; results are memoized per process in a bounded LRU
    (:class:`PrepCache`, the L1) over a cross-process, cross-campaign
    disk store (:mod:`repro.experiments.prepstore`, the L2).

    ``store`` selects the L2: ``None`` uses the env-configured default,
    ``False`` disables it for this call, and a
    :class:`~repro.experiments.prepstore.PrepStore` instance pins one
    explicitly.  With the store active, even a cold compute is round-
    tripped through the store's canonical serialization, so cold and
    warm calls return structurally identical netlists.
    """
    scale = resolve_scale(scale)
    key = _prep_key(circuit_name, technique, scale, seed, synth_seed, resynth, h)
    if cache:
        cached = _PREP_CACHE.get(key)
        if cached is not None:
            return cached

    if store is None:
        store = prepstore.prep_store()
    elif store is False:
        store = None
    digest = None
    if store is not None and store.enabled:
        digest = prepstore.store_key(_store_params(key))
        prepared = store.get(digest)
        if prepared is not None:
            if cache:
                _PREP_CACHE.put(key, prepared)
            return prepared

    start = time.monotonic()
    spec = SPECS[circuit_name]
    host = generate_host(circuit_name, scale=scale, seed=seed)
    key_width = spec.key_width if scale == "paper" else scaled_key_width(spec, scale)
    key_width = min(key_width, len(host.inputs) - 1)
    key_width -= key_width % 2

    lock = TECHNIQUES[technique]
    if technique == "sfll_hd":
        locked = lock(host, key_width, h=h if h is not None else 1, seed=seed)
    else:
        locked = lock(host, key_width, seed=seed)

    netlist = locked.circuit
    if resynth:
        netlist = resynthesize(netlist, seed=synth_seed, effort=2)
    prepared = PreparedCircuit(
        spec=spec,
        locked=locked,
        netlist=netlist,
        scale=scale,
        key_width=locked.key_width,
        prep_elapsed=time.monotonic() - start,
    )
    if digest is not None:
        # Publish and adopt the canonical round-tripped form, so this
        # cold path returns exactly what a warm hit will return.
        prepared = store.put(digest, prepared, _store_params(key))
    if cache:
        _PREP_CACHE.put(key, prepared)
    return prepared


def format_table(title, header, rows, note=None):
    """Render rows as an aligned text table (paper-style)."""
    widths = [len(h) for h in header]
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append(note)
    return "\n".join(lines)
