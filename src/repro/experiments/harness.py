"""Shared experiment harness: locked-circuit preparation and table output.

Every benchmark in ``benchmarks/`` regenerates one paper artifact (table
or figure) through the row-builder functions in
:mod:`repro.experiments.tables`; this module holds the common machinery —
deterministic preparation of (host, locked, resynthesized) triples,
wall-clock measurement, and paper-style row formatting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..benchgen.registry import generate_host, resolve_scale, scaled_key_width, SPECS
from ..locking import TECHNIQUES
from ..synth.resynth import resynthesize

__all__ = ["PreparedCircuit", "prepare_locked", "format_table", "Timer"]


@dataclass
class PreparedCircuit:
    """A host + locked + synthesized triple ready for attacks."""

    spec: object
    locked: object  # LockedCircuit ground truth
    netlist: object  # attack view: resynthesized locked netlist
    scale: str
    key_width: int
    prep_elapsed: float = 0.0


class Timer:
    """Context manager measuring wall-clock seconds into ``.elapsed``."""

    def __enter__(self):
        self._start = time.monotonic()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc):
        self.elapsed = time.monotonic() - self._start
        return False


_PREP_CACHE = {}


def prepare_locked(
    circuit_name,
    technique,
    scale=None,
    seed=0,
    synth_seed=1,
    resynth=True,
    h=None,
    cache=True,
):
    """Generate, lock, and resynthesize one benchmark circuit.

    Mirrors the paper's setup: hosts locked at RTL, then synthesized "to
    break the regular structure of the locking scheme".  Deterministic in
    all arguments; results are memoized per process.
    """
    scale = resolve_scale(scale)
    key = (circuit_name, technique, scale, seed, synth_seed, resynth, h)
    if cache and key in _PREP_CACHE:
        return _PREP_CACHE[key]

    start = time.monotonic()
    spec = SPECS[circuit_name]
    host = generate_host(circuit_name, scale=scale, seed=seed)
    key_width = spec.key_width if scale == "paper" else scaled_key_width(spec, scale)
    key_width = min(key_width, len(host.inputs) - 1)
    key_width -= key_width % 2

    lock = TECHNIQUES[technique]
    if technique == "sfll_hd":
        locked = lock(host, key_width, h=h if h is not None else 1, seed=seed)
    else:
        locked = lock(host, key_width, seed=seed)

    netlist = locked.circuit
    if resynth:
        netlist = resynthesize(netlist, seed=synth_seed, effort=2)
    prepared = PreparedCircuit(
        spec=spec,
        locked=locked,
        netlist=netlist,
        scale=scale,
        key_width=locked.key_width,
        prep_elapsed=time.monotonic() - start,
    )
    if cache:
        _PREP_CACHE[key] = prepared
    return prepared


def format_table(title, header, rows, note=None):
    """Render rows as an aligned text table (paper-style)."""
    widths = [len(h) for h in header]
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append(note)
    return "\n".join(lines)
