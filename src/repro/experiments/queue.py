"""Durable SQLite-backed work queue for campaign cells.

The queue turns a campaign's expanded cell grid into *claimable tasks*
that any number of worker processes — on one host, or on many hosts
sharing the campaign directory — drain concurrently.  It is the
robustness layer under ``repro campaign run --backend=queue`` and the
standalone ``repro worker`` entrypoint, and the seam a later Redis/HTTP
backend slots into (same claim/ack/fail verbs, different transport).

Design invariants:

* **Leases, not locks.**  A claim hands the worker a lease with a TTL.
  A worker that is SIGKILLed, loses power, or wedges simply stops
  heartbeating; the expired lease is atomically requeued on the next
  claim, so no failure mode strands work.
* **Bounded retries with exponential backoff + deterministic jitter.**
  A failed attempt (cell error, infrastructure failure, or a lease that
  expired under a dead worker) reschedules the cell no earlier than
  ``backoff_base * 2^(attempt-1)`` seconds out, jittered by a pure hash
  of ``(cell_id, attempt)`` so replays are reproducible.
* **Poison-cell quarantine.**  A cell failing on ``max_attempts``
  distinct claims moves to state ``poisoned`` instead of retrying
  forever; every failure's traceback is preserved on the task (and in
  the published ``status="poisoned"`` record).
* **The queue is derived state.**  Published cell records under
  ``cells/`` are the source of truth; the queue file can be deleted or
  corrupted at any time and is rebuilt from the spec plus the records
  (:class:`QueueCorruption` signals callers to do exactly that).

On-disk: one ``queue.sqlite`` (WAL mode) inside the campaign directory,
next to ``spec.json`` and ``cells/``.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, asdict

__all__ = [
    "QUEUE_FILENAME",
    "QueueConfig",
    "QueueTask",
    "QueueCorruption",
    "CellQueue",
    "queue_path",
    "backoff_delay",
]

#: Name of the queue database inside a campaign directory.
QUEUE_FILENAME = "queue.sqlite"

#: Task states.  pending -> leased -> done | poisoned (pending again on
#: failure/expiry while attempts remain); pending -> cancelled when a
#: job's deadline expires before the cell was claimed.
TASK_STATES = ("pending", "leased", "done", "poisoned", "cancelled")


def queue_path(directory):
    return os.path.join(directory, QUEUE_FILENAME)


class QueueCorruption(RuntimeError):
    """The queue database is unreadable; rebuild it from the records."""


@dataclass(frozen=True)
class QueueConfig:
    """Tuning for one campaign's queue (``CampaignSpec.queue``)."""

    lease_ttl: float = 60.0       # seconds a claim stays valid unheartbeaten
    max_attempts: int = 3         # distinct claims before quarantine
    backoff_base: float = 0.25    # first retry delay (doubles per attempt)
    backoff_cap: float = 30.0     # retry delay ceiling
    backoff_jitter: float = 0.25  # max fractional jitter added to a delay
    heartbeat: float = 0.0        # lease-extension period; 0 = lease_ttl/3
    poll: float = 0.05            # worker idle poll period

    def __post_init__(self):
        if self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be >= 0")
        if self.poll <= 0:
            raise ValueError("poll must be positive")
        if self.heartbeat < 0:
            raise ValueError("heartbeat must be >= 0 (0 = lease_ttl/3)")
        if self.heartbeat > 0 and self.heartbeat >= self.lease_ttl:
            raise ValueError(
                "heartbeat must be shorter than lease_ttl "
                f"({self.heartbeat} >= {self.lease_ttl}): a lease would "
                "always expire before its first extension"
            )

    @property
    def heartbeat_period(self):
        return self.heartbeat if self.heartbeat > 0 else self.lease_ttl / 3.0

    @classmethod
    def from_dict(cls, data):
        data = dict(data or {})
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown queue config keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**data)

    def to_dict(self):
        return asdict(self)


@dataclass(frozen=True)
class QueueTask:
    """One claimable cell, as stored in the queue."""

    cell_id: str
    artifact: str
    index: int
    params: dict
    state: str
    attempts: int
    not_before: float
    lease_owner: str = None
    lease_expires: float = None
    result_status: str = None
    failures: tuple = ()
    job: str = None       # owning service job id, None for direct campaigns
    options: dict = None  # per-task options override (None = spec.options)


def backoff_delay(cell_id, attempt, config):
    """Deterministic backoff for the next claim after a failed attempt.

    Exponential in the attempt number, capped, plus a jitter fraction
    drawn from a pure hash of ``(cell_id, attempt)`` — reproducible, yet
    decorrelated across cells so a burst of failures does not stampede.
    """
    base = min(config.backoff_base * (2.0 ** max(0, attempt - 1)),
               config.backoff_cap)
    digest = hashlib.sha256(f"backoff|{cell_id}|{attempt}".encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return base * (1.0 + config.backoff_jitter * unit)


_SCHEMA = """
CREATE TABLE IF NOT EXISTS tasks (
    cell_id       TEXT PRIMARY KEY,
    artifact      TEXT NOT NULL,
    idx           INTEGER NOT NULL,
    params        TEXT NOT NULL,
    state         TEXT NOT NULL DEFAULT 'pending',
    attempts      INTEGER NOT NULL DEFAULT 0,
    not_before    REAL NOT NULL DEFAULT 0,
    lease_owner   TEXT,
    lease_expires REAL,
    result_status TEXT,
    failures      TEXT NOT NULL DEFAULT '[]',
    job           TEXT,
    options       TEXT
);
CREATE INDEX IF NOT EXISTS tasks_by_state ON tasks (state, not_before, idx);
"""

#: Columns added after the PR-6 schema; old queue files are migrated in
#: place (the queue is derived state, but migration beats a rebuild).
_MIGRATIONS = (
    ("job", "ALTER TABLE tasks ADD COLUMN job TEXT"),
    ("options", "ALTER TABLE tasks ADD COLUMN options TEXT"),
)

#: DatabaseError messages that mean "this file is not a usable queue".
_CORRUPTION_MARKERS = (
    "file is not a database",
    "not a database",
    "database disk image is malformed",
    "unsupported file format",
    "no such table",
)


def _translate(exc):
    text = str(exc).lower()
    if any(marker in text for marker in _CORRUPTION_MARKERS):
        return QueueCorruption(f"queue database unusable: {exc}")
    return exc


class CellQueue:
    """Claim/ack/fail interface over one campaign's ``queue.sqlite``.

    Every public method is one atomic transaction (``BEGIN IMMEDIATE``),
    so concurrent workers — processes or hosts on shared storage — see a
    serialized queue.  Instances are cheap; open one per process/thread
    (SQLite connections must not cross forks or threads).
    """

    def __init__(self, directory, config=None, clock=time.time):
        self.directory = directory
        self.path = queue_path(directory)
        self.config = config or QueueConfig()
        self._clock = clock
        self._conn = None

    # -- connection management ----------------------------------------
    def _connection(self):
        if self._conn is None:
            os.makedirs(self.directory, exist_ok=True)
            try:
                conn = sqlite3.connect(self.path, timeout=30.0,
                                       isolation_level=None)
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute("PRAGMA busy_timeout=30000")
                conn.executescript(_SCHEMA)
                present = {row[1] for row in
                           conn.execute("PRAGMA table_info(tasks)")}
                for column, ddl in _MIGRATIONS:
                    if column not in present:
                        conn.execute(ddl)
                conn.execute(
                    "CREATE INDEX IF NOT EXISTS tasks_by_job "
                    "ON tasks (job, state)"
                )
            except sqlite3.DatabaseError as exc:
                raise _translate(exc) from exc
            self._conn = conn
        return self._conn

    def close(self):
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    @staticmethod
    def destroy(directory):
        """Delete the queue database (it is derived state; see module doc)."""
        removed = False
        for suffix in ("", "-wal", "-shm"):
            path = queue_path(directory) + suffix
            try:
                os.unlink(path)
                removed = True
            except FileNotFoundError:
                pass
        return removed

    @contextmanager
    def _txn(self):
        conn = self._connection()
        try:
            conn.execute("BEGIN IMMEDIATE")
            yield conn
            conn.execute("COMMIT")
        except sqlite3.DatabaseError as exc:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise _translate(exc) from exc

    def _now(self, now=None):
        return self._clock() if now is None else now

    # -- population + reconciliation ----------------------------------
    def ensure(self, cells, record_loader=None, job=None, options=None):
        """Insert missing tasks and reconcile state against the records.

        ``cells`` is the campaign's expanded cell list (objects with
        ``cell_id``/``artifact``/``params``); ``record_loader`` maps a
        cell id to its *terminal* record or ``None``.  ``job`` tags the
        inserted tasks with an owning service job id, and ``options``
        attaches a per-task options override (service jobs carry their
        own option grids; direct campaign cells leave both NULL and run
        under ``spec.options``).  Reconciliation repairs every crash
        window: a task in any live state whose record was already
        published becomes ``done`` (crash after publish, before ack) —
        including ``cancelled`` tasks whose cell finished before the
        cancel landed — and a ``done``/``poisoned`` task whose record is
        missing or corrupt goes back to ``pending``.
        """
        now = self._now()
        repaired = {"inserted": 0, "completed": 0, "requeued": 0}
        options_json = (None if options is None
                        else json.dumps(options, sort_keys=True))
        with self._txn() as conn:
            for index, cell in enumerate(cells):
                cur = conn.execute(
                    "INSERT OR IGNORE INTO tasks (cell_id, artifact, idx, "
                    "params, state, not_before, job, options) VALUES "
                    "(?, ?, ?, ?, 'pending', 0, ?, ?)",
                    (cell.cell_id, cell.artifact, index,
                     json.dumps(cell.params, sort_keys=True),
                     job, options_json),
                )
                repaired["inserted"] += cur.rowcount
            if record_loader is None:
                return repaired
            rows = conn.execute(
                "SELECT cell_id, state FROM tasks"
            ).fetchall()
            for cell_id, state in rows:
                record = record_loader(cell_id)
                if record is not None and state not in ("done", "poisoned"):
                    conn.execute(
                        "UPDATE tasks SET state='done', result_status=?, "
                        "lease_owner=NULL, lease_expires=NULL WHERE cell_id=?",
                        (record.get("status"), cell_id),
                    )
                    repaired["completed"] += 1
                elif record is None and state == "done":
                    conn.execute(
                        "UPDATE tasks SET state='pending', not_before=?, "
                        "lease_owner=NULL, lease_expires=NULL, "
                        "result_status=NULL WHERE cell_id=?",
                        (now, cell_id),
                    )
                    repaired["requeued"] += 1
        return repaired

    # -- the worker verbs ---------------------------------------------
    def _recover_expired(self, conn, now):
        """Requeue (or quarantine) every task whose lease has expired."""
        rows = conn.execute(
            "SELECT cell_id, attempts, lease_owner, failures FROM tasks "
            "WHERE state='leased' AND lease_expires < ?",
            (now,),
        ).fetchall()
        for cell_id, attempts, owner, failures_json in rows:
            failures = json.loads(failures_json)
            failures.append({
                "worker": owner,
                "attempt": attempts,
                "error": (
                    f"lease expired after claim {attempts} by {owner!r} "
                    "(worker died or stalled past the TTL)"
                ),
                "time": now,
            })
            if attempts >= self.config.max_attempts:
                conn.execute(
                    "UPDATE tasks SET state='poisoned', lease_owner=NULL, "
                    "lease_expires=NULL, failures=? WHERE cell_id=?",
                    (json.dumps(failures), cell_id),
                )
            else:
                conn.execute(
                    "UPDATE tasks SET state='pending', lease_owner=NULL, "
                    "lease_expires=NULL, not_before=?, failures=? "
                    "WHERE cell_id=?",
                    (now + backoff_delay(cell_id, attempts, self.config),
                     json.dumps(failures), cell_id),
                )
        return len(rows)

    def claim(self, worker, now=None):
        """Atomically lease the next runnable task, or return ``None``.

        Expired leases are recovered first, so a fleet of claimers is
        also the queue's garbage collector — no separate reaper process
        needs to stay alive for crashed workers' cells to requeue.
        """
        now = self._now(now)
        with self._txn() as conn:
            self._recover_expired(conn, now)
            row = conn.execute(
                "SELECT cell_id, artifact, idx, params, attempts, failures, "
                "job, options FROM tasks WHERE state='pending' AND "
                "not_before <= ? ORDER BY idx LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            (cell_id, artifact, idx, params, attempts, failures,
             job, options) = row
            conn.execute(
                "UPDATE tasks SET state='leased', lease_owner=?, "
                "lease_expires=?, attempts=? WHERE cell_id=?",
                (worker, now + self.config.lease_ttl, attempts + 1, cell_id),
            )
            return QueueTask(
                cell_id=cell_id, artifact=artifact, index=idx,
                params=json.loads(params), state="leased",
                attempts=attempts + 1, not_before=0.0, lease_owner=worker,
                lease_expires=now + self.config.lease_ttl,
                failures=tuple(json.loads(failures)),
                job=job,
                options=None if options is None else json.loads(options),
            )

    def heartbeat(self, cell_id, worker, now=None):
        """Extend a held lease; False means the lease was already lost."""
        now = self._now(now)
        with self._txn() as conn:
            cur = conn.execute(
                "UPDATE tasks SET lease_expires=? WHERE cell_id=? AND "
                "state='leased' AND lease_owner=?",
                (now + self.config.lease_ttl, cell_id, worker),
            )
            return cur.rowcount == 1

    def ack(self, cell_id, worker, result_status, now=None):
        """Mark a leased task done (record already published).

        Lease-guarded: a stale worker whose lease expired (and whose
        cell was reclaimed) gets ``False`` and must treat the ack as a
        no-op — the record it published is identical by determinism, and
        the live claimant owns the task's fate.
        """
        with self._txn() as conn:
            cur = conn.execute(
                "UPDATE tasks SET state='done', result_status=?, "
                "lease_owner=NULL, lease_expires=NULL WHERE cell_id=? AND "
                "state='leased' AND lease_owner=?",
                (result_status, cell_id, worker),
            )
            return cur.rowcount == 1

    def fail(self, cell_id, worker, error, now=None):
        """Record a failed attempt; returns "requeued"|"poisoned"|"stale".

        Requeues with exponential backoff while attempts remain, else
        quarantines the cell with every failure's traceback preserved.
        Lease-guarded like :meth:`ack`.
        """
        now = self._now(now)
        with self._txn() as conn:
            row = conn.execute(
                "SELECT attempts, failures FROM tasks WHERE cell_id=? AND "
                "state='leased' AND lease_owner=?",
                (cell_id, worker),
            ).fetchone()
            if row is None:
                return "stale"
            attempts, failures_json = row
            failures = json.loads(failures_json)
            failures.append({
                "worker": worker,
                "attempt": attempts,
                "error": error,
                "time": now,
            })
            if attempts >= self.config.max_attempts:
                conn.execute(
                    "UPDATE tasks SET state='poisoned', lease_owner=NULL, "
                    "lease_expires=NULL, failures=? WHERE cell_id=?",
                    (json.dumps(failures), cell_id),
                )
                return "poisoned"
            conn.execute(
                "UPDATE tasks SET state='pending', lease_owner=NULL, "
                "lease_expires=NULL, not_before=?, failures=? WHERE cell_id=?",
                (now + backoff_delay(cell_id, attempts, self.config),
                 json.dumps(failures), cell_id),
            )
            return "requeued"

    def cancel(self, cell_ids=None, job=None, now=None):
        """Cancel pending tasks (deadline expiry / user abort); returns ids.

        Select by explicit ``cell_ids``, by owning ``job``, or both (the
        intersection); refusing a call with neither guards against a
        bug cancelling an entire campaign.  Expired leases are recovered
        first so a dead worker's cell is cancellable, not stuck leased.
        Only ``pending`` tasks move to ``cancelled``: a live leased cell
        runs to completion and keeps its record (``ensure`` later flips
        a cancelled task whose record surfaced back to ``done``), and
        finished tasks are untouched.
        """
        if cell_ids is None and job is None:
            raise ValueError("cancel() needs cell_ids and/or job")
        now = self._now(now)
        cancelled = []
        with self._txn() as conn:
            self._recover_expired(conn, now)
            query = "SELECT cell_id FROM tasks WHERE state='pending'"
            args = []
            if job is not None:
                query += " AND job=?"
                args.append(job)
            rows = conn.execute(query + " ORDER BY idx", args).fetchall()
            wanted = None if cell_ids is None else set(cell_ids)
            for (cell_id,) in rows:
                if wanted is not None and cell_id not in wanted:
                    continue
                conn.execute(
                    "UPDATE tasks SET state='cancelled', lease_owner=NULL, "
                    "lease_expires=NULL WHERE cell_id=?",
                    (cell_id,),
                )
                cancelled.append(cell_id)
        return cancelled

    # -- inspection + maintenance -------------------------------------
    _TASK_COLUMNS = (
        "cell_id, artifact, idx, params, state, attempts, not_before, "
        "lease_owner, lease_expires, result_status, failures, job, options"
    )

    def get(self, cell_id):
        with self._txn() as conn:
            row = conn.execute(
                f"SELECT {self._TASK_COLUMNS} FROM tasks WHERE cell_id=?",
                (cell_id,),
            ).fetchone()
        return None if row is None else self._task(row)

    def tasks(self, state=None, job=None):
        query = f"SELECT {self._TASK_COLUMNS} FROM tasks"
        clauses, args = [], []
        if state is not None:
            clauses.append("state=?")
            args.append(state)
        if job is not None:
            clauses.append("job=?")
            args.append(job)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        with self._txn() as conn:
            rows = conn.execute(query + " ORDER BY idx", args).fetchall()
        return [self._task(row) for row in rows]

    @staticmethod
    def _task(row):
        (cell_id, artifact, idx, params, state, attempts, not_before,
         lease_owner, lease_expires, result_status, failures,
         job, options) = row
        return QueueTask(
            cell_id=cell_id, artifact=artifact, index=idx,
            params=json.loads(params), state=state, attempts=attempts,
            not_before=not_before, lease_owner=lease_owner,
            lease_expires=lease_expires, result_status=result_status,
            failures=tuple(json.loads(failures)),
            job=job,
            options=None if options is None else json.loads(options),
        )

    def counts(self, job=None):
        query = "SELECT state, COUNT(*) FROM tasks"
        args = ()
        if job is not None:
            query += " WHERE job=?"
            args = (job,)
        with self._txn() as conn:
            rows = conn.execute(query + " GROUP BY state", args).fetchall()
        counts = {state: 0 for state in TASK_STATES}
        counts.update(dict(rows))
        return counts

    def drained(self, now=None, job=None):
        """True when nothing is pending or leased — only terminal states.

        Recovers expired leases first so a queue whose last workers were
        all SIGKILLed still reports honestly (their cells come back as
        pending, and ``drained`` stays False until someone runs them).
        """
        now = self._now(now)
        query = ("SELECT COUNT(*) FROM tasks WHERE state IN "
                 "('pending', 'leased')")
        args = ()
        if job is not None:
            query += " AND job=?"
            args = (job,)
        with self._txn() as conn:
            self._recover_expired(conn, now)
            row = conn.execute(query, args).fetchone()
        return row[0] == 0

    def audit(self, record_loader, now=None):
        """Requeue done tasks whose published record no longer validates.

        Catches torn/corrupt record files after the fact; returns the
        ids reset to pending.
        """
        now = self._now(now)
        reset = []
        with self._txn() as conn:
            rows = conn.execute(
                "SELECT cell_id FROM tasks WHERE state='done'"
            ).fetchall()
            for (cell_id,) in rows:
                if record_loader(cell_id) is None:
                    conn.execute(
                        "UPDATE tasks SET state='pending', not_before=?, "
                        "lease_owner=NULL, lease_expires=NULL, "
                        "result_status=NULL WHERE cell_id=?",
                        (now, cell_id),
                    )
                    reset.append(cell_id)
        return reset

    def reset(self, cell_ids, now=None):
        """Return tasks to a fresh pending state (``campaign retry``)."""
        now = self._now(now)
        with self._txn() as conn:
            for cell_id in cell_ids:
                conn.execute(
                    "UPDATE tasks SET state='pending', attempts=0, "
                    "not_before=?, lease_owner=NULL, lease_expires=NULL, "
                    "result_status=NULL, failures='[]' WHERE cell_id=?",
                    (now, cell_id),
                )
        return len(cell_ids)
