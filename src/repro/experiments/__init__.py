"""Experiment harness regenerating every table and figure of the paper."""

from .harness import PreparedCircuit, Timer, format_table, prepare_locked
from .tables import (
    TABLE1_CIRCUITS,
    TABLE2_TECHNIQUES,
    fig6_rows,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
    valkyrie_rows,
)

__all__ = [
    "PreparedCircuit",
    "Timer",
    "format_table",
    "prepare_locked",
    "TABLE1_CIRCUITS",
    "TABLE2_TECHNIQUES",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "fig6_rows",
    "valkyrie_rows",
]
