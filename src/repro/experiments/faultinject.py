"""Deterministic, env-gated fault injection for campaign backends.

The durable work queue's correctness contract — no stranded leases, no
duplicated cells, aggregates bit-identical to a no-fault serial run — is
only worth claiming if it is *exercised*.  This module plants hook
points ("sites") along the worker's execution path; each site fires with
a configured probability, decided by a **pure hash** of
``(seed, site, cell, attempt)`` so a fault schedule is reproducible
across runs and independent of scheduling order.

Sites and their gates (all off unless the env var is set):

``mid_cell``
    ``REPRO_FAULT_KILL_RATE`` — SIGKILL the executing process the moment
    the cell payload starts (a worker dying mid-cell; exercises lease
    expiry + requeue, or crash-record classification under the
    hard-timeout runner).
``before_publish``
    ``REPRO_FAULT_CRASH_BEFORE_PUBLISH_RATE`` — SIGKILL after the cell
    ran but before its record landed (work lost; the retry must rerun).
``after_publish``
    ``REPRO_FAULT_CRASH_AFTER_PUBLISH_RATE`` — SIGKILL after the record
    landed but before the queue ack (the next claimer must recognise the
    published record and ack without re-running).
``torn_record``
    ``REPRO_FAULT_TORN_RECORD_RATE`` — overwrite the just-published
    record with truncated JSON (a torn write on an exotic filesystem;
    the queue audit must requeue the cell).
``stall``
    ``REPRO_FAULT_STALL_RATE`` + ``REPRO_FAULT_STALL_S`` — sleep while
    holding a fresh claim so the lease expires under a live worker
    (exercises the lease-expiry race: stale publish/ack must be benign).

Shared knobs:

``REPRO_FAULT_SEED``
    Base seed for the decision hash (default ``0``).
``REPRO_FAULT_MAX_ATTEMPT``
    Only attempts ``<=`` this value are eligible (default ``1``).  With
    the default, every cell suffers at most one injected fault per site
    and its retry budget always exceeds the injected-failure count, so a
    faulted queue campaign provably converges to the no-fault aggregate
    instead of quarantining cells at random.

The current attempt number is read from ``REPRO_CELL_ATTEMPT`` (set by
the queue worker around each claim; absent means attempt 1), so hooks
buried in shared code paths need no plumbing.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time

__all__ = [
    "FAULT_SITES",
    "enabled",
    "should_fire",
    "crash_point",
    "stall_point",
    "torn_record_point",
    "current_attempt",
]

#: site -> env var holding its firing probability.
FAULT_SITES = {
    "mid_cell": "REPRO_FAULT_KILL_RATE",
    "before_publish": "REPRO_FAULT_CRASH_BEFORE_PUBLISH_RATE",
    "after_publish": "REPRO_FAULT_CRASH_AFTER_PUBLISH_RATE",
    "torn_record": "REPRO_FAULT_TORN_RECORD_RATE",
    "stall": "REPRO_FAULT_STALL_RATE",
}


def _rate(site):
    try:
        return float(os.environ.get(FAULT_SITES[site], "") or 0.0)
    except ValueError:
        return 0.0


def enabled():
    """True when any fault site has a non-zero rate configured."""
    return any(_rate(site) > 0.0 for site in FAULT_SITES)


def current_attempt():
    """The 1-based attempt number of the claim being executed."""
    try:
        return max(1, int(os.environ.get("REPRO_CELL_ATTEMPT", "1") or 1))
    except ValueError:
        return 1


def _max_attempt():
    try:
        return max(1, int(os.environ.get("REPRO_FAULT_MAX_ATTEMPT", "1") or 1))
    except ValueError:
        return 1


def _chance(site, key, attempt):
    """Deterministic uniform draw in [0, 1) for one (site, cell, attempt)."""
    seed = os.environ.get("REPRO_FAULT_SEED", "0")
    digest = hashlib.sha256(
        f"{seed}|{site}|{key}|{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def should_fire(site, key, attempt=None):
    """Decide (purely, reproducibly) whether a site fires for a cell."""
    rate = _rate(site)
    if rate <= 0.0:
        return False
    if attempt is None:
        attempt = current_attempt()
    if attempt > _max_attempt():
        return False
    return _chance(site, key, attempt) < rate


def crash_point(site, key, attempt=None):
    """SIGKILL the current process if the site fires (no cleanup runs)."""
    if should_fire(site, key, attempt):
        os.kill(os.getpid(), signal.SIGKILL)


def stall_point(key, attempt=None):
    """Sleep ``REPRO_FAULT_STALL_S`` if the stall site fires.

    Returns True when a stall happened, so callers can skip starting the
    lease heartbeat and genuinely lose the lease.
    """
    if not should_fire("stall", key, attempt):
        return False
    try:
        stall_s = float(os.environ.get("REPRO_FAULT_STALL_S", "0") or 0.0)
    except ValueError:
        stall_s = 0.0
    if stall_s > 0:
        time.sleep(stall_s)
    return True


def torn_record_point(path, key, attempt=None):
    """Truncate a just-published record if the torn-record site fires."""
    if not should_fire("torn_record", key, attempt):
        return False
    with open(path, "w") as handle:
        handle.write('{"status": "ok", "result"')
    return True
