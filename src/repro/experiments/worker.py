"""Queue-draining campaign workers.

Two entry points share this module:

* :func:`run_queue_backend` — the parent side of
  ``repro campaign run --backend=queue``: populates the durable queue,
  spawns ``spec.workers`` local worker processes, respawns any that die
  (fault injection, OOM, SIGKILL), and returns once the queue is fully
  drained with every task's record published and audited.
* :func:`worker_loop` — one worker's life: claim a lease, run the cell,
  publish its canonical JSON record, ack; on failure report to the
  queue (retry with backoff, or quarantine).  ``repro worker <dir>``
  runs exactly this against any campaign directory, so extra processes
  — or other hosts mounting the same storage — can join a drain at any
  time.

Crash-window recovery, by construction:

* died mid-cell            -> lease expires, cell requeued, rerun
* died before publish      -> same (no record, rerun)
* died after publish,      -> next claimer finds the published record
  before ack                  and acks without re-running (no duplicate
                              work, no duplicate rows)
* record torn/corrupt      -> queue audit requeues the cell
* stale worker (lost lease) -> its publish is byte-equivalent by
  determinism; its ack/fail are lease-guarded no-ops
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
import traceback
import uuid

from . import campaign as _campaign
from . import faultinject
from .queue import CellQueue, QueueCorruption
from .records import make_cell_record

__all__ = [
    "default_worker_id",
    "worker_loop",
    "run_queue_backend",
    "publish_quarantine_records",
]


def default_worker_id():
    """A fleet-unique worker identity (host + pid + nonce)."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


def _record_path(spec, cell_id):
    return os.path.join(spec.cells_dir, f"{cell_id}.json")


def _terminal_record_loader(spec):
    """cell_id -> finished record (ok/timeout/poisoned) or None."""

    def load(cell_id):
        return _campaign._load_cell_record(_record_path(spec, cell_id))

    return load


class _LeaseHeartbeat(threading.Thread):
    """Extends one claimed lease until stopped (its own DB connection).

    A worker alive but slow on a long cell must not lose its lease; a
    worker that dies takes this daemon thread with it, the heartbeats
    stop, and the lease expires — which is the whole recovery story.
    """

    daemon = True

    def __init__(self, directory, config, cell_id, worker_id):
        super().__init__(name=f"lease-heartbeat-{cell_id[:32]}")
        self._directory = directory
        self._config = config
        self._cell_id = cell_id
        self._worker_id = worker_id
        self._halt = threading.Event()

    def run(self):
        queue = CellQueue(self._directory, self._config)
        try:
            while not self._halt.wait(self._config.heartbeat_period):
                if not queue.heartbeat(self._cell_id, self._worker_id):
                    break  # lease lost; nothing left to extend
        except QueueCorruption:
            pass  # the orchestrator rebuilds; dying quietly is correct
        finally:
            queue.close()

    def stop(self):
        self._halt.set()
        self.join(timeout=5.0)


def _publish(spec, record, cell_id, worker_id, attempt, job=None):
    """Finalize + atomically publish one record, with fault hooks."""
    record = _campaign.finalize_cell_record(
        record, cell_id, cell_timeout=spec.cell_timeout
    )
    record["worker"] = worker_id
    record["attempt"] = int(attempt)
    if job is not None:
        record["job"] = str(job)
    path = _record_path(spec, cell_id)
    faultinject.crash_point("before_publish", cell_id, attempt)
    _campaign._atomic_write_json(path, record)
    faultinject.torn_record_point(path, cell_id, attempt)
    faultinject.crash_point("after_publish", cell_id, attempt)
    return record


def _quarantine_record(spec, task):
    """Build the poisoned record from a task's preserved failures."""
    failures = list(task.failures)
    details = "\n\n".join(
        f"--- attempt {f.get('attempt', '?')} "
        f"(worker {f.get('worker', '?')}):\n{f.get('error', '')}"
        for f in failures
    )
    return make_cell_record(
        artifact=task.artifact,
        params=task.params,
        status="poisoned",
        error=(
            f"quarantined after {task.attempts} failed claims:\n{details}"
        ),
        cell_timeout=spec.cell_timeout,
        cell_id=task.cell_id,
        attempt=task.attempts,
        failures=failures,
        job=task.job,
    )


def publish_quarantine_records(spec, queue, cell_ids=None):
    """Persist a poisoned record for quarantined tasks that lack one.

    Covers quarantines nobody was alive to publish (a lease that
    expired past ``max_attempts`` under a dead worker).  Skips tasks
    that somehow acquired a valid terminal record (e.g. a stale worker
    eventually succeeded): the published result wins over the verdict.
    """
    loader = _terminal_record_loader(spec)
    published = []
    for task in queue.tasks(state="poisoned"):
        if cell_ids is not None and task.cell_id not in cell_ids:
            continue
        if loader(task.cell_id) is not None:
            continue
        record = _campaign.finalize_cell_record(
            _quarantine_record(spec, task), task.cell_id,
            cell_timeout=spec.cell_timeout,
        )
        _campaign._atomic_write_json(_record_path(spec, task.cell_id), record)
        published.append(task.cell_id)
    return published


def _process_task(spec, queue, config, task, worker_id):
    """Run one claimed task to an ack/fail; returns the outcome label.

    Both ``queue.ack`` sites are lease-guarded: a worker whose lease
    expired under it (and whose cell was reclaimed) gets ``False`` back,
    and its outcome is reported as ``"stale"`` — the published record is
    byte-equivalent by determinism, but the completion belongs to the
    live claimant, so a stale worker must not count it as its own.
    """
    cell_id = task.cell_id
    attempt = task.attempts
    # Exported so fault hooks and attempt-aware cells (selftest) see the
    # claim number without plumbing it through every call layer.
    os.environ["REPRO_CELL_ATTEMPT"] = str(attempt)
    try:
        existing = _campaign._load_cell_record(_record_path(spec, cell_id))
        if existing is not None:
            # Crash-after-publish/before-ack recovery: the work is done
            # and persisted; just settle the ledger.
            if not queue.ack(cell_id, worker_id, existing["status"]):
                return "stale"
            return "recovered"
        stalled = faultinject.stall_point(cell_id, attempt)
        heartbeat = None
        if not stalled:
            heartbeat = _LeaseHeartbeat(
                spec.directory, config, cell_id, worker_id
            )
            heartbeat.start()
        try:
            options = (task.options if task.options is not None
                       else spec.options)
            payload = (task.artifact, task.params, options)
            try:
                if spec.cell_timeout is not None:
                    cell = _campaign.CampaignCell(
                        task.artifact, task.index, cell_id, task.params
                    )
                    record = _campaign.run_one_cell_hard(spec, cell, payload)
                else:
                    record = _campaign._run_cell_payload(payload)
            except Exception:
                # Infrastructure failure (spawn failure, prep-store read
                # error, pipe EOF...): retryable, never fatal to the
                # worker loop.
                outcome = queue.fail(
                    cell_id, worker_id,
                    f"infrastructure failure on worker {worker_id}:\n"
                    + traceback.format_exc(),
                )
                if outcome == "poisoned":
                    publish_quarantine_records(spec, queue, [cell_id])
                return outcome
            if record["status"] in ("ok", "timeout"):
                _publish(spec, record, cell_id, worker_id, attempt,
                         job=task.job)
                if not queue.ack(cell_id, worker_id, record["status"]):
                    return "stale"
                return record["status"]
            # status == "error": a failed attempt — let the queue decide
            # between backoff-retry and quarantine.
            outcome = queue.fail(cell_id, worker_id, record["error"])
            if outcome == "poisoned":
                publish_quarantine_records(spec, queue, [cell_id])
            return outcome
        finally:
            if heartbeat is not None:
                heartbeat.stop()
    finally:
        os.environ.pop("REPRO_CELL_ATTEMPT", None)


def worker_loop(spec, worker_id=None, max_cells=None, config=None,
                progress=None, exit_when_drained=True, should_stop=None):
    """Drain the campaign's queue until empty (or ``max_cells`` claims).

    Safe to run concurrently with any number of other workers, locally
    or from other hosts sharing the campaign directory.  Returns a
    small outcome histogram.

    With ``exit_when_drained=False`` the worker outlives the drain and
    keeps polling for new tasks — the shape a ``repro serve`` fleet
    worker runs in, where jobs arrive at any time.  ``should_stop`` is
    an optional callable checked between claims (e.g. an orphan check
    against the supervising daemon's pid).
    """
    worker_id = worker_id or default_worker_id()
    config = config or spec.queue_config()
    cells = _campaign.expand_cells(spec)
    loader = _terminal_record_loader(spec)
    queue = CellQueue(spec.directory, config)
    stats = {"worker": worker_id, "claimed": 0}
    try:
        queue.ensure(cells, loader)
        while True:
            if should_stop is not None and should_stop():
                stats["stopped"] = True
                break
            if max_cells is not None and stats["claimed"] >= max_cells:
                break
            try:
                task = queue.claim(worker_id)
            except QueueCorruption:
                # The orchestrator (or next `campaign run`) rebuilds the
                # queue from the records; this worker just retires.
                stats["corrupt"] = True
                break
            if task is None:
                if exit_when_drained and queue.drained():
                    break
                time.sleep(config.poll)
                continue
            stats["claimed"] += 1
            outcome = _process_task(spec, queue, config, task, worker_id)
            stats[outcome] = stats.get(outcome, 0) + 1
            if progress is not None:
                progress(
                    f"[{outcome}] {task.cell_id} "
                    f"(attempt {task.attempts}, worker {worker_id})"
                )
    finally:
        queue.close()
    return stats


def _install_sigterm_exit():
    """Make SIGTERM raise SystemExit so ``finally`` blocks run.

    A worker killed by its supervisor mid-cell must still tear down the
    per-cell hard-timeout child it spawned; the default SIGTERM
    disposition skips every ``finally``, leaking the child.
    """
    def _exit(signum, frame):
        raise SystemExit(143)

    try:
        signal.signal(signal.SIGTERM, _exit)
    except (ValueError, OSError):
        pass  # non-main thread or exotic platform: keep the default


def _worker_entry(spec_data, worker_id):
    """Module-level target for spawned worker processes (picklable)."""
    _install_sigterm_exit()
    spec = _campaign.CampaignSpec.from_dict(spec_data)
    worker_loop(spec, worker_id=worker_id)


def _service_worker_entry(spec_data, worker_id, parent_pid):
    """Fleet worker for ``repro serve``: poll forever, retire if orphaned.

    Service workers do not exit on drain (new jobs arrive at any time);
    instead they watch the supervising daemon's pid and retire when it
    is gone, so a SIGKILLed daemon cannot leave immortal workers behind.
    """
    _install_sigterm_exit()
    spec = _campaign.CampaignSpec.from_dict(spec_data)
    worker_loop(
        spec, worker_id=worker_id, exit_when_drained=False,
        should_stop=lambda: os.getppid() != parent_pid,
    )


def _open_queue(spec, cells, config):
    """Open + populate the queue, rebuilding once if it is corrupt."""
    loader = _terminal_record_loader(spec)
    for _attempt in range(2):
        queue = CellQueue(spec.directory, config)
        try:
            queue.ensure(cells, loader)
            return queue
        except QueueCorruption:
            queue.close()
            CellQueue.destroy(spec.directory)
    raise _campaign.CampaignError(
        f"campaign {spec.name!r}: could not initialize the work queue at "
        f"{spec.directory}"
    )


def _emit_new_records(spec, seen, progress):
    if progress is None:
        return
    try:
        entries = os.listdir(spec.cells_dir)
    except OSError:
        return
    for entry in sorted(entries):
        if not entry.endswith(".json") or entry in seen:
            continue
        record = _campaign._read_cell_record(
            os.path.join(spec.cells_dir, entry)
        )
        if record is None:
            continue  # mid-publish or torn; it will come around again
        seen.add(entry)
        progress(
            f"[{record['status']}] {record.get('cell_id', entry[:-5])} "
            f"({record['elapsed']:.2f}s, pid {record['pid']})"
        )


def run_queue_backend(spec, cells, progress=None):
    """Drive a queue-backed campaign to full drain (parent side).

    Spawns ``spec.workers`` worker processes and keeps the fleet at
    strength while work remains — a worker lost to SIGKILL/fault
    injection is respawned, its leased cell recovered via TTL expiry.
    Completion requires the queue to be drained *and* every done task's
    record to pass audit (torn records requeue their cells).
    """
    config = spec.queue_config()
    loader = _terminal_record_loader(spec)
    queue = _open_queue(spec, cells, config)
    ctx = _campaign._pool_context(spec)
    n_workers = max(1, spec.workers or 1)
    # Generous but finite: quarantine bounds failures per cell, so a
    # respawn storm beyond this is a bug, not bad luck.
    respawn_cap = 8 * max(1, len(cells)) + 4 * n_workers + 16
    respawns = 0
    spawned = 0
    # Resumed cells' records predate this run; only report new ones.
    seen_records = set()
    try:
        seen_records.update(
            e for e in os.listdir(spec.cells_dir) if e.endswith(".json")
        )
    except OSError:
        pass

    def spawn():
        nonlocal spawned
        spawned += 1
        # NOT daemonic: a daemonic process cannot spawn the per-cell
        # hard-timeout child (run_one_cell_hard -> ctx.Process), which
        # turned every cell_timeout queue cell into a poisoned
        # "daemonic processes are not allowed to have children" failure.
        # Orphan prevention is the finally-block _kill_process below.
        proc = ctx.Process(
            target=_worker_entry,
            args=(spec.to_dict(), f"local-{spawned}-{os.getpid()}"),
        )
        proc.start()
        return proc

    workers = [spawn() for _ in range(n_workers)]
    try:
        while True:
            _emit_new_records(spec, seen_records, progress)
            drained = False
            try:
                if queue.drained():
                    drained = True
                    publish_quarantine_records(spec, queue)
                    if queue.audit(loader):
                        # Torn/corrupt records came back as pending:
                        # the fleet must re-run them.
                        drained = False
                    elif not any(proc.is_alive() for proc in workers):
                        # Final only once every worker has retired: a
                        # stale straggler (expired lease) may still
                        # overwrite a record after this audit, so the
                        # drain cannot be declared while one lives.
                        for proc in workers:
                            proc.join()
                        break
            except QueueCorruption:
                queue.close()
                CellQueue.destroy(spec.directory)
                queue = _open_queue(spec, cells, config)
                drained = False
            if not drained:
                # Work remains: keep the fleet at strength.  (While
                # drained we deliberately let exited workers lie —
                # respawning them would churn claim-nothing processes
                # against the straggler wait above.)
                for i, proc in enumerate(workers):
                    if not proc.is_alive():
                        proc.join()
                        respawns += 1
                        if respawns > respawn_cap:
                            raise _campaign.CampaignError(
                                f"campaign {spec.name!r}: queue workers "
                                f"restarted {respawns} times without "
                                "draining the queue; giving up"
                            )
                        workers[i] = spawn()
            time.sleep(config.poll)
        _emit_new_records(spec, seen_records, progress)
    finally:
        for proc in workers:
            if proc.is_alive():
                _campaign._kill_process(proc)
        queue.close()
