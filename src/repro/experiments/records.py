"""Canonical per-cell record schema shared by every campaign backend.

Every backend — the in-process serial runner, the multiprocessing pool,
the hard-timeout per-cell processes, and the durable work queue — emits
the *same* record shape through :func:`make_cell_record`, and every
loader goes through :func:`validate_cell_record` before trusting a file
on disk.  One shape means resume, ``status``, ``report``, aggregation
and the fault-injection suite never have to special-case who produced a
record.

The canonical fields, always present::

    artifact      str   artifact the cell belongs to
    params        dict  the cell's expansion parameters
    status        str   "ok" | "error" | "timeout" | "poisoned"
    result        any   the cell function's return value (None unless ok)
    error         str?  traceback / diagnostic text (None for ok)
    elapsed       float wall-clock seconds spent on this attempt
    pid           int   process that executed (or last touched) the cell
    prep          dict  per-cell preparation-cache counter deltas
    timed_out     bool  accounting flag (status=="timeout", or overran a
                        configured cell_timeout while still finishing)
    cell_timeout  float|None  the hard limit in force when the record
                        was written (None = no hard limit)

Optional, backend-specific extras (preserved by validation):

    circuit       dict  circuit provenance ({id, source, digest} from
                        :mod:`repro.corpus`) when the cell prepared one
    cell_id       str   stable cell identity (set when persisted)
    worker        str   queue worker id that produced the record
    attempt       int   1-based claim number that produced the record
    failures      list  quarantine forensics: one entry per failed
                        attempt ({worker, attempt, error, time})
    job           str   owning ``repro serve`` job id, when the cell was
                        enqueued by a service job rather than a direct
                        campaign run

``status`` semantics:

* ``ok``       — the cell ran to completion; ``result`` feeds aggregation.
* ``timeout``  — killed at ``cell_timeout``; terminal (resume skips it).
* ``poisoned`` — quarantined after repeated failures; terminal.
* ``error``    — a failed attempt; **not** terminal: resume and the
  queue re-run it (the persisted record is crash forensics, not a
  completion marker).
"""

from __future__ import annotations

import os

__all__ = [
    "CELL_STATUSES",
    "TERMINAL_STATUSES",
    "RETRYABLE_STATUSES",
    "make_cell_record",
    "validate_cell_record",
    "deterministic_view",
]

#: Every status a cell record may carry.
CELL_STATUSES = ("ok", "error", "timeout", "poisoned")

#: Statuses that count as "this cell is done" for resume/aggregation.
#: ``error`` is deliberately absent: an error record documents a failed
#: attempt but leaves the cell pending.
TERMINAL_STATUSES = ("ok", "timeout", "poisoned")

#: Statuses ``repro campaign retry`` may requeue.
RETRYABLE_STATUSES = ("error", "timeout", "poisoned")

#: Fields every canonical record carries.
_REQUIRED = (
    "artifact", "params", "status", "result", "error", "elapsed", "pid",
    "prep", "timed_out", "cell_timeout",
)


def make_cell_record(*, artifact, params, status, result=None, error=None,
                     elapsed=0.0, pid=None, prep=None, timed_out=False,
                     cell_timeout=None, circuit=None, cell_id=None,
                     worker=None, attempt=None, failures=None, job=None):
    """Build one canonical cell record (see the module docstring)."""
    if status not in CELL_STATUSES:
        raise ValueError(f"unknown cell status {status!r}")
    record = {
        "artifact": str(artifact),
        "params": dict(params),
        "status": status,
        "result": result,
        "error": error,
        "elapsed": float(elapsed),
        "pid": int(os.getpid() if pid is None else pid),
        "prep": dict(prep or {}),
        "timed_out": bool(timed_out),
        "cell_timeout": None if cell_timeout is None else float(cell_timeout),
    }
    if circuit is not None:
        record["circuit"] = dict(circuit)
    if cell_id is not None:
        record["cell_id"] = str(cell_id)
    if worker is not None:
        record["worker"] = str(worker)
    if attempt is not None:
        record["attempt"] = int(attempt)
    if failures is not None:
        record["failures"] = list(failures)
    if job is not None:
        record["job"] = str(job)
    return record


#: Record-level fields that vary run-to-run (timing, process identity,
#: scheduling provenance) and must be ignored when comparing two runs of
#: the same cell for bit-identity.
#: Fields stripped by :func:`deterministic_view`.  ``cell_timeout`` is
#: enforcement *configuration* (a daemon may impose a global limit a
#: direct run does not); the run-invariant consequence of a limit is
#: the ``status``/``timed_out`` pair, which stays in the view.
_VOLATILE_FIELDS = (
    "elapsed", "pid", "prep", "worker", "attempt", "failures", "job",
    "cell_id", "cell_timeout",
)

#: Keys inside ``result["attack"]`` (an ``AttackResult.as_dict()``) that
#: are pure functions of the inputs; everything else — elapsed time,
#: solver-internal timing details — is dropped from the view.
_DETERMINISTIC_ATTACK_KEYS = (
    "attack", "technique", "circuit", "key", "success", "timed_out",
    "time_limit", "iterations", "oracle_queries",
)


def deterministic_view(record):
    """Project a cell record onto its run-invariant fields.

    Two runs of the same cell — direct campaign vs. service job, pool
    vs. queue backend, cold vs. warm prep — must agree exactly on this
    view; wall-clock, pids, worker identity and job provenance are
    stripped.  Used by the bit-identity tests and the ``serve-smoke``
    comparison against a direct ``repro campaign run``.
    """
    view = {k: v for k, v in record.items() if k not in _VOLATILE_FIELDS}
    result = view.get("result")
    if isinstance(result, dict):
        result = {k: v for k, v in result.items() if k != "elapsed"}
        attack = result.get("attack")
        if isinstance(attack, dict):
            result["attack"] = {
                k: attack.get(k) for k in _DETERMINISTIC_ATTACK_KEYS
            }
        view["result"] = result
    return view


def validate_cell_record(record):
    """Return the record normalized to the canonical shape, or ``None``.

    Tolerates records written before the schema was unified (missing
    ``prep``/``timed_out``/``cell_timeout`` get their defaults) but
    rejects anything structurally unusable — wrong types, unknown
    status, an ``ok`` record with no result — so loaders treat such
    files exactly like corrupt/truncated ones: not done, recompute.
    """
    if not isinstance(record, dict):
        return None
    status = record.get("status")
    if status not in CELL_STATUSES:
        return None
    if not isinstance(record.get("artifact"), str):
        return None
    if not isinstance(record.get("params"), dict):
        return None
    if status == "ok" and record.get("result") is None:
        return None
    elapsed = record.get("elapsed", 0.0)
    if not isinstance(elapsed, (int, float)) or elapsed < 0:
        return None
    normalized = dict(record)
    normalized["result"] = record.get("result")
    normalized["error"] = record.get("error")
    normalized["elapsed"] = float(elapsed)
    normalized["pid"] = int(record.get("pid") or 0)
    prep = record.get("prep")
    normalized["prep"] = dict(prep) if isinstance(prep, dict) else {}
    normalized["timed_out"] = bool(record.get("timed_out", status == "timeout"))
    cell_timeout = record.get("cell_timeout")
    normalized["cell_timeout"] = (
        float(cell_timeout) if isinstance(cell_timeout, (int, float)) else None
    )
    return normalized
