"""Cross-campaign, cross-process preparation store (disk L2).

The per-process :class:`~repro.experiments.harness.PrepCache` amortizes
locked-circuit preparation *within* one worker; this module adds the
layer below it: a **content-addressed, disk-backed store** shared across
worker processes and across campaigns.  Prepared (host, locked,
resynthesized) triples are keyed by a canonical SHA-256 over every
parameter that determines the output — qualified circuit id and content
digest (see :mod:`repro.corpus`), technique and its extra parameters,
nominal key width, scale, lock seed, synthesis seed, and the resynthesis
recipe — and persisted as one JSON entry per preparation under
``benchmarks/results/prepstore/`` (override with ``REPRO_PREP_STORE_DIR``).

Design points:

* **Atomic entries.**  Writes go to ``<entry>.tmp.<pid>`` and are
  published with ``os.replace``, so a concurrent (or killed) worker can
  never observe a torn entry; a truncated file from an exotic filesystem
  reads as a miss and is recomputed.
* **Canonical round-trip.**  A *miss* serializes the freshly computed
  preparation and returns the **deserialized** form — the same object a
  later warm hit deserializes.  Cold and warm runs therefore hand
  byte-identical netlists (down to gate-dict iteration order) to the
  attacks, which is what makes warm-store campaign aggregates
  bit-identical to cold ones by construction.
* **LRU size bound.**  Entries carry their last-use time in the file
  mtime (hits re-touch it); once the store exceeds ``capacity`` entries
  (``REPRO_PREP_STORE_CAPACITY``, default 64), the least-recently-used
  entries are evicted at publish time.
* **Determinism contract.**  The content hash covers inputs, not bytes:
  it relies on :func:`repro.synth.resynth.resynthesize` being bit-
  deterministic in (circuit, recipe, synth_seed) across processes and
  fork/spawn contexts — enforced by ``tests/test_resynth_determinism.py``.

Disable the layer entirely with ``REPRO_PREP_STORE=0`` (the per-process
L1 keeps working).
"""

from __future__ import annotations

import hashlib
import json
import os
import time

__all__ = [
    "PrepStore",
    "prep_store",
    "configure_prep_store",
    "prep_store_info",
    "clear_prep_store",
    "store_key",
    "serialize_prepared",
    "deserialize_prepared",
    "DEFAULT_STORE_ROOT",
    "FORMAT_VERSION",
]

#: Bumped whenever the payload layout (or anything that changes the
#: meaning of stored entries) changes; part of the content hash, so old
#: entries simply stop matching instead of deserializing garbage.
#: v2: qualified circuit ids + source/digest provenance (circuit-source
#: registry); ``params`` carries a per-technique extras dict instead of
#: a hardcoded ``h`` field.
FORMAT_VERSION = 2

#: Default landing zone, next to the campaign results.
DEFAULT_STORE_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))),
    "benchmarks", "results", "prepstore",
)


def store_key(params):
    """Canonical content hash (hex) of one preparation's parameters.

    Besides :data:`FORMAT_VERSION`, the package version is folded in so
    a release that changes the generation/locking/resynthesis pipeline
    automatically stops matching entries produced by older code.  A
    *development* change to those algorithms with an unchanged version
    still requires bumping :data:`FORMAT_VERSION` (or wiping the store).
    """
    from .. import __version__

    payload = dict(params)
    payload["format"] = FORMAT_VERSION
    payload["repro_version"] = __version__
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# (De)serialization of PreparedCircuit triples.
#
# Circuits travel as .bench text: the writer emits gates in topological
# order and the parser rebuilds the gate dict in file order, so two
# loads of the same payload are structurally *identical* — same input/
# output order, same gate-dict iteration order, hence same topological
# tie-breaking downstream.  Everything else is plain JSON.
# ----------------------------------------------------------------------

def serialize_prepared(prepared, params):
    """JSON-safe payload for one :class:`PreparedCircuit`."""
    from ..netlist.bench import write_bench

    locked = prepared.locked
    return {
        "format": FORMAT_VERSION,
        "params": dict(params),
        "circuit_id": prepared.circuit_id,
        "source": prepared.source,
        "digest": prepared.digest,
        "scale": prepared.scale,
        "key_width": prepared.key_width,
        "prep_elapsed": prepared.prep_elapsed,
        "netlist": {"name": prepared.netlist.name,
                    "bench": write_bench(prepared.netlist)},
        "locked": {
            "technique": locked.technique,
            "key_inputs": list(locked.key_inputs),
            "correct_key": {k: int(bool(v))
                            for k, v in locked.correct_key.items()},
            "protected_inputs": list(locked.protected_inputs),
            "key_of_ppi": {p: list(ks) for p, ks in locked.key_of_ppi.items()},
            "critical_signal": locked.critical_signal,
            "metadata": locked.metadata,
            "circuit": {"name": locked.circuit.name,
                        "bench": write_bench(locked.circuit)},
            "original": {"name": locked.original.name,
                         "bench": write_bench(locked.original)},
        },
    }


def deserialize_prepared(payload):
    """Rebuild a :class:`PreparedCircuit` from :func:`serialize_prepared`.

    Raises ``KeyError``/``ValueError`` on malformed payloads — callers
    treat that as a store miss.
    """
    from ..corpus import find_spec
    from ..locking.base import LockedCircuit
    from ..netlist.bench import parse_bench
    from .harness import PreparedCircuit

    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported prep payload format {payload.get('format')!r}")
    blob = payload["locked"]
    locked = LockedCircuit(
        circuit=parse_bench(blob["circuit"]["bench"], name=blob["circuit"]["name"]),
        key_inputs=tuple(blob["key_inputs"]),
        correct_key={k: bool(v) for k, v in blob["correct_key"].items()},
        original=parse_bench(blob["original"]["bench"],
                             name=blob["original"]["name"]),
        technique=blob["technique"],
        protected_inputs=tuple(blob["protected_inputs"]),
        key_of_ppi={p: tuple(ks) for p, ks in blob["key_of_ppi"].items()},
        critical_signal=blob["critical_signal"],
        metadata=blob["metadata"],
    )
    circuit_id = payload.get("circuit_id") or payload["params"].get("circuit")
    return PreparedCircuit(
        # A stored entry must stay loadable even when its circuit has
        # since left the registry/corpus, hence find_spec (None on miss).
        spec=find_spec(circuit_id) if circuit_id else None,
        locked=locked,
        netlist=parse_bench(payload["netlist"]["bench"],
                            name=payload["netlist"]["name"]),
        scale=payload["scale"],
        key_width=payload["key_width"],
        prep_elapsed=payload["prep_elapsed"],
        circuit_id=circuit_id,
        source=payload.get("source") or payload["params"].get("source"),
        digest=payload.get("digest") or payload["params"].get("digest"),
    )


class PrepStore:
    """Content-addressed directory of prepared-circuit entries.

    One JSON file per entry, named ``<sha256>.json``.  All operations are
    safe against concurrent readers/writers and killed processes; every
    failure mode degrades to a miss (recompute), never to corruption.
    """

    def __init__(self, root=None, capacity=None, enabled=None):
        if root is None:
            root = os.environ.get("REPRO_PREP_STORE_DIR") or DEFAULT_STORE_ROOT
        if capacity is None:
            capacity = int(os.environ.get("REPRO_PREP_STORE_CAPACITY", "64"))
        if enabled is None:
            enabled = os.environ.get("REPRO_PREP_STORE", "1") != "0"
        self.root = root
        self.capacity = max(1, capacity)
        self.enabled = enabled
        self._pid = None
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    # -- bookkeeping ---------------------------------------------------
    def _counters(self):
        """Reset counters on first touch in a new (forked) process."""
        pid = os.getpid()
        if pid != self._pid:
            self._pid = pid
            self.hits = self.misses = self.puts = self.evictions = 0

    def _path(self, digest):
        return os.path.join(self.root, f"{digest}.json")

    def entries(self):
        """Entry digests currently in the store, LRU-first."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        stamped = []
        for entry in names:
            if not entry.endswith(".json"):
                continue
            try:
                mtime = os.path.getmtime(os.path.join(self.root, entry))
            except OSError:
                continue  # evicted by a concurrent process
            stamped.append((mtime, entry[: -len(".json")]))
        stamped.sort()
        return [digest for _mtime, digest in stamped]

    def __len__(self):
        return len(self.entries())

    def info(self):
        self._counters()
        return {
            "root": self.root,
            "enabled": self.enabled,
            "entries": len(self),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }

    def stats(self):
        """Just the per-process counters (the cell-record delta source)."""
        self._counters()
        return {
            "store_hits": self.hits,
            "store_misses": self.misses,
            "store_puts": self.puts,
            "store_evictions": self.evictions,
        }

    # -- store operations ----------------------------------------------
    def get(self, digest):
        """The :class:`PreparedCircuit` for ``digest``, or ``None``."""
        from ..netlist.errors import NetlistError

        self._counters()
        if not self.enabled:
            return None
        path = self._path(digest)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            prepared = deserialize_prepared(payload)
        except (OSError, ValueError, KeyError, TypeError, NetlistError):
            # Unreadable JSON *or* well-formed JSON around corrupt bench
            # text: both degrade to a miss.  Drop the poisoned entry so
            # the recompute's put() republishes a healthy one even if a
            # concurrent writer lost the race.
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        try:
            now = time.time()
            os.utime(path, (now, now))  # refresh LRU stamp
        except OSError:
            pass
        return prepared

    def put(self, digest, prepared, params):
        """Persist one preparation; returns its canonical (reloaded) form.

        The canonical round-trip is the point: callers hand out the
        deserialized object so cold and warm paths are bit-identical.
        On any I/O failure the store stays silent and the *canonical*
        in-memory form is still returned.
        """
        self._counters()
        payload = serialize_prepared(prepared, params)
        canonical = deserialize_prepared(payload)
        if not self.enabled:
            return canonical
        path = self._path(digest)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(self.root, exist_ok=True)
            with open(tmp, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
            self.puts += 1
            self._evict()
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return canonical

    def _evict(self):
        entries = self.entries()
        excess = len(entries) - self.capacity
        for digest in entries[:max(0, excess)]:
            try:
                os.unlink(self._path(digest))
                self.evictions += 1
            except OSError:
                pass  # another process got there first

    def clear(self):
        """Remove every entry (and stray tmp files) from the store."""
        removed = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for entry in names:
            if entry.endswith(".json") or ".json.tmp." in entry:
                try:
                    os.unlink(os.path.join(self.root, entry))
                    removed += 1
                except OSError:
                    pass
        return removed


_STORE = None
_STORE_PINNED = False


def prep_store():
    """The process-wide default store (env-configured, built lazily).

    Tracks environment changes (tests monkeypatching
    ``REPRO_PREP_STORE_DIR``) unless a store was pinned explicitly via
    :func:`configure_prep_store`.
    """
    global _STORE
    if _STORE_PINNED and _STORE is not None:
        return _STORE
    root = os.environ.get("REPRO_PREP_STORE_DIR") or DEFAULT_STORE_ROOT
    enabled = os.environ.get("REPRO_PREP_STORE", "1") != "0"
    if _STORE is None or _STORE.root != root or _STORE.enabled != enabled:
        _STORE = PrepStore()
    return _STORE


def configure_prep_store(root=None, capacity=None, enabled=None):
    """Replace the default store (tests, benches); returns the new one.

    The configured store stays authoritative over later environment
    reads; calling with no arguments un-pins it and reverts to the
    env-driven default.
    """
    global _STORE, _STORE_PINNED
    _STORE = PrepStore(root=root, capacity=capacity, enabled=enabled)
    _STORE_PINNED = not (root is None and capacity is None and enabled is None)
    return _STORE


def prep_store_info():
    """Statistics of the default disk store."""
    return prep_store().info()


def clear_prep_store():
    """Wipe the default disk store; returns the number of entries removed."""
    return prep_store().clear()
