"""Row builders for every table and figure of the KRATT paper.

Each function regenerates one artifact of the evaluation section and
returns ``(header, rows)`` ready for
:func:`repro.experiments.harness.format_table`.  The benchmarks print
them; EXPERIMENTS.md records paper-vs-measured values.

All attacks see only the *resynthesized* locked netlist and the key-input
names (plus an oracle in OG experiments), never the ground truth.
"""

from __future__ import annotations

import statistics

from ..attacks import (
    Oracle,
    appsat_attack,
    ddip_attack,
    kratt_og_attack,
    kratt_ol_attack,
    sat_attack,
    scope_attack,
    score_key,
)
from ..benchgen.hello import HELLO_H, hello_locked
from ..benchgen.registry import SPECS, generate_host, resolve_scale
from ..locking import SFLT_TECHNIQUES
from ..synth.resynth import resynthesize
from .harness import Timer, prepare_locked

__all__ = [
    "TABLE1_CIRCUITS",
    "TABLE2_TECHNIQUES",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "fig6_rows",
    "valkyrie_rows",
]

TABLE1_CIRCUITS = ("c2670", "c5315", "c6288", "b14_C", "b15_C", "b20_C")
TABLE2_TECHNIQUES = ("antisat", "sarlock", "cac", "ttlock")
TABLE4_CIRCUITS = ("b14_C", "b15_C", "b17_C", "b20_C", "b21_C", "b22_C")
HELLO_CIRCUITS = ("final_v1", "final_v2", "final_v3")

_SCOPE_FAST = {"use_implications": False, "power_patterns": 16}


def table1_rows(scale=None):
    """Table I: benchmark details (published vs generated stand-ins)."""
    scale = resolve_scale(scale)
    header = (
        "Circuit", "#inputs", "#outputs", "#gates(paper)", "#gates(gen)",
        "#key inputs", "scale",
    )
    rows = []
    for name in TABLE1_CIRCUITS:
        spec = SPECS[name]
        host = generate_host(name, scale=scale)
        rows.append(
            (
                name,
                len(host.inputs),
                len(host.outputs),
                spec.gates,
                host.num_gates,
                spec.key_width,
                scale,
            )
        )
    return header, rows


def _ol_cell(locked, guesses, elapsed):
    score = score_key(locked, guesses)
    return f"{score.cdk}/{score.dk}", f"{elapsed:.2f}"


def table2_rows(scale=None, circuits=TABLE1_CIRCUITS, techniques=TABLE2_TECHNIQUES,
                qbf_time_limit=3.0):
    """Table II: OL attacks (SCOPE vs KRATT) on the ISCAS/ITC circuits."""
    header = ("Circuit", "Technique", "SCOPE cdk/dk", "SCOPE CPU",
              "KRATT cdk/dk", "KRATT CPU", "KRATT method")
    rows = []
    for circuit_name in circuits:
        for technique in techniques:
            prep = prepare_locked(circuit_name, technique, scale=scale)
            with Timer() as t_scope:
                scope = scope_attack(
                    prep.netlist, prep.locked.key_inputs, rule="preserve",
                    **_SCOPE_FAST,
                )
            scope_cell = _ol_cell(prep.locked, scope.guesses, t_scope.elapsed)
            with Timer() as t_kratt:
                result = kratt_ol_attack(
                    prep.netlist, prep.locked.key_inputs,
                    qbf_time_limit=qbf_time_limit,
                    scope_kwargs=_SCOPE_FAST,
                    technique=technique,
                )
            kratt_cell = _ol_cell(prep.locked, result.key, t_kratt.elapsed)
            rows.append(
                (circuit_name, technique, *scope_cell, *kratt_cell,
                 result.details.get("method", "-"))
            )
    return header, rows


def table3_rows(scale=None, circuits=TABLE1_CIRCUITS, techniques=TABLE2_TECHNIQUES,
                baseline_time_limit=15.0, qbf_time_limit=3.0):
    """Table III: OG attacks (SAT / DDIP / AppSAT / KRATT).

    ``baseline_time_limit`` is the scaled stand-in for the paper's 2-day
    limit; baselines hitting it report OoT, as in the paper.
    """
    header = ("Circuit", "Technique", "SAT", "DDIP", "AppSAT", "KRATT", "KRATT ok")
    rows = []
    for circuit_name in circuits:
        for technique in techniques:
            prep = prepare_locked(circuit_name, technique, scale=scale)
            cells = []
            for attack in (sat_attack, ddip_attack, appsat_attack):
                oracle = Oracle(prep.locked.original)
                result = attack(
                    prep.netlist, prep.locked.key_inputs, oracle,
                    time_limit=baseline_time_limit, technique=technique,
                )
                if result.timed_out:
                    cells.append("OoT")
                elif result.success and score_key(prep.locked, result.key).functional:
                    cells.append(f"{result.elapsed:.2f}")
                else:
                    cells.append("wrong" if result.key else "fail")
            oracle = Oracle(prep.locked.original)
            result = kratt_og_attack(
                prep.netlist, prep.locked.key_inputs, oracle,
                qbf_time_limit=qbf_time_limit, technique=technique,
            )
            score = score_key(prep.locked, result.key)
            cells.append(f"{result.elapsed:.2f}")
            rows.append((circuit_name, technique, *cells,
                         "yes" if score.functional else "no"))
    return header, rows


def table4_rows(scale=None, circuits=TABLE4_CIRCUITS, qbf_time_limit=3.0):
    """Table IV: OL attacks on Gen-Anti-SAT locked ITC'99 circuits."""
    header = ("Circuit", "SCOPE cdk/dk", "SCOPE CPU", "KRATT cdk/dk",
              "KRATT CPU", "KRATT method")
    rows = []
    for circuit_name in circuits:
        prep = prepare_locked(circuit_name, "genantisat", scale=scale)
        with Timer() as t_scope:
            scope = scope_attack(
                prep.netlist, prep.locked.key_inputs, rule="preserve",
                **_SCOPE_FAST,
            )
        scope_cell = _ol_cell(prep.locked, scope.guesses, t_scope.elapsed)
        with Timer() as t_kratt:
            result = kratt_ol_attack(
                prep.netlist, prep.locked.key_inputs,
                qbf_time_limit=qbf_time_limit, scope_kwargs=_SCOPE_FAST,
                technique="genantisat",
            )
        kratt_cell = _ol_cell(prep.locked, result.key, t_kratt.elapsed)
        rows.append((circuit_name, *scope_cell, *kratt_cell,
                     result.details.get("method", "-")))
    return header, rows


def table5_rows(scale=None, baseline_time_limit=30.0, qbf_time_limit=3.0):
    """Table V: HeLLO: CTF'22 circuits — details plus OL and OG attacks."""
    header = ("Circuit", "#in", "#out", "#gates", "#keys", "h",
              "SCOPE cdk/dk", "KRATT-OL cdk/dk", "SAT", "KRATT-OG", "OG ok")
    rows = []
    scale = resolve_scale(scale)
    for name in HELLO_CIRCUITS:
        locked = hello_locked(name, scale=scale)
        netlist = resynthesize(locked.circuit, seed=1, effort=2)
        with Timer() as t_scope:
            scope = scope_attack(netlist, locked.key_inputs, rule="preserve",
                                 **_SCOPE_FAST)
        scope_score = score_key(locked, scope.guesses)
        result_ol = kratt_ol_attack(
            netlist, locked.key_inputs, qbf_time_limit=qbf_time_limit,
            scope_kwargs=_SCOPE_FAST, technique="sfll_hd",
        )
        ol_score = score_key(locked, result_ol.key)
        oracle = Oracle(locked.original)
        result_sat = sat_attack(
            netlist, locked.key_inputs, oracle,
            time_limit=baseline_time_limit, technique="sfll_hd",
        )
        sat_cell = "OoT" if result_sat.timed_out else (
            f"{result_sat.elapsed:.2f}"
            if result_sat.success and score_key(locked, result_sat.key).functional
            else "wrong"
        )
        oracle = Oracle(locked.original)
        result_og = kratt_og_attack(
            netlist, locked.key_inputs, oracle,
            qbf_time_limit=qbf_time_limit, technique="sfll_hd",
        )
        og_score = score_key(locked, result_og.key)
        rows.append(
            (
                name,
                len(locked.original.inputs),
                len(locked.original.outputs),
                netlist.num_gates,
                locked.key_width,
                HELLO_H[name],
                scope_score.as_row(),
                ol_score.as_row(),
                sat_cell,
                f"{result_og.elapsed:.2f}",
                "yes" if og_score.functional else "no",
            )
        )
    return header, rows


def fig6_rows(scale=None, variants=10, techniques=TABLE2_TECHNIQUES,
              qbf_time_limit=3.0):
    """Fig. 6: impact of resynthesis on KRATT's run-time (c6288 hosts).

    Locks c6288 with each technique, produces ``variants`` functionally
    equivalent but structurally different netlists (seeded efforts and
    delay constraints), runs KRATT on each, and reports the run-time
    series plus the paper's summary statistics (mean, stddev, max/min).
    """
    header = ("Technique", "variant", "effort", "delay_bias", "KRATT CPU", "ok")
    rows = []
    summary = {}
    for technique in techniques:
        prep = prepare_locked("c6288", technique, scale=scale, resynth=False)
        times = []
        for v in range(variants):
            effort = 1 + (v % 3)
            delay_bias = (v % 5) / 4.0
            netlist = resynthesize(
                prep.locked.circuit, seed=100 + v, effort=effort,
                delay_bias=delay_bias,
            )
            oracle = Oracle(prep.locked.original)
            with Timer() as t:
                result = kratt_og_attack(
                    netlist, prep.locked.key_inputs, oracle,
                    qbf_time_limit=qbf_time_limit, technique=technique,
                )
            score = score_key(prep.locked, result.key)
            times.append(t.elapsed)
            rows.append((technique, v, effort, f"{delay_bias:.2f}",
                         f"{t.elapsed:.2f}", "yes" if score.functional else "no"))
        mean = statistics.mean(times)
        std = statistics.pstdev(times)
        ratio = max(times) / max(min(times), 1e-9)
        summary[technique] = (mean, std, ratio)
    summary_rows = [
        (tech, "mean/std/ratio", "-", "-",
         f"{m:.2f}/{s:.2f}/{r:.2f}", "-")
        for tech, (m, s, r) in summary.items()
    ]
    return header, rows + summary_rows


def valkyrie_rows(scale=None, synth_seeds=(1, 2), qbf_time_limit=3.0,
                  circuits=("b14_C", "b15_C"), key_widths=(None,)):
    """Valkyrie-repository-style census (Section IV, second experiment).

    Sweeps SFLTs and DFLTs over hosts and synthesis seeds; reports how
    each locked instance was broken (QBF witness for SFLTs, structural
    analysis for DFLTs) mirroring the paper's 720-circuit census at
    reproduction scale.
    """
    header = ("Circuit", "Technique", "synth seed", "method", "functional")
    rows = []
    counts = {"qbf": 0, "structural": 0, "other": 0}
    for circuit_name in circuits:
        for technique in SFLT_TECHNIQUES + ("ttlock", "cac"):
            for synth_seed in synth_seeds:
                prep = prepare_locked(
                    circuit_name, technique, scale=scale, synth_seed=synth_seed
                )
                if technique in SFLT_TECHNIQUES:
                    result = kratt_ol_attack(
                        prep.netlist, prep.locked.key_inputs,
                        qbf_time_limit=qbf_time_limit, scope_kwargs=_SCOPE_FAST,
                        technique=technique,
                    )
                else:
                    oracle = Oracle(prep.locked.original)
                    result = kratt_og_attack(
                        prep.netlist, prep.locked.key_inputs, oracle,
                        qbf_time_limit=qbf_time_limit, technique=technique,
                    )
                method = result.details.get("method", "-")
                if method == "qbf":
                    counts["qbf"] += 1
                elif method == "og-structural":
                    counts["structural"] += 1
                else:
                    counts["other"] += 1
                score = score_key(prep.locked, result.key)
                rows.append((circuit_name, technique, synth_seed, method,
                             "yes" if score.functional else "no"))
    rows.append(("TOTAL", f"qbf={counts['qbf']}",
                 f"structural={counts['structural']}",
                 f"other={counts['other']}", ""))
    return header, rows
