"""Cell and row builders for every table and figure of the KRATT paper.

Each artifact (Tables I-V, Fig. 6, the Valkyrie-style census) is defined
by three functions sharing one ``options`` dict:

* ``<artifact>_expand(options)`` — the list of independent grid cells
  (JSON-safe parameter dicts) the artifact decomposes into;
* ``<artifact>_cell(cell, options)`` — run one cell and return a
  JSON-safe result dict (``"row"`` plus whatever the aggregation needs);
* ``<artifact>_aggregate(results, options)`` — fold the cell results,
  in expansion order, into ``(header, rows)`` for
  :func:`repro.experiments.harness.format_table`.

The classic serial entry points (``table1_rows`` ...) are thin
expand→cell→aggregate loops, so the campaign orchestrator
(:mod:`repro.experiments.campaign`) — which runs the same cells sharded
across a worker pool and persisted per cell — produces bit-identical
tables by construction.

All attacks see only the *resynthesized* locked netlist and the key-input
names (plus an oracle in OG experiments), never the ground truth.
"""

from __future__ import annotations

import statistics

from ..attacks import (
    Oracle,
    appsat_attack,
    ddip_attack,
    kratt_og_attack,
    kratt_ol_attack,
    sat_attack,
    scope_attack,
    score_key,
)
from ..benchgen.hello import HELLO_H, hello_locked
from ..benchgen.registry import resolve_scale
from ..corpus import resolve_circuit
from ..locking import SFLT_TECHNIQUES, TECHNIQUES
from ..synth.resynth import resynthesize
from .harness import Timer, prepare_locked

__all__ = [
    "TABLE1_CIRCUITS",
    "TABLE2_TECHNIQUES",
    "TABLE4_CIRCUITS",
    "HELLO_CIRCUITS",
    "ATTACK_NAMES",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "fig6_rows",
    "valkyrie_rows",
    "attack_rows",
]

TABLE1_CIRCUITS = ("c2670", "c5315", "c6288", "b14_C", "b15_C", "b20_C")
TABLE2_TECHNIQUES = ("antisat", "sarlock", "cac", "ttlock")
TABLE4_CIRCUITS = ("b14_C", "b15_C", "b17_C", "b20_C", "b21_C", "b22_C")
HELLO_CIRCUITS = ("final_v1", "final_v2", "final_v3")

_SCOPE_FAST = {"use_implications": False, "power_patterns": 16}

#: Default overall wall-clock budget (seconds) for one KRATT run inside a
#: table cell — the scaled stand-in for the paper's per-attack limits.
#: Generous at reproduction scale (cells finish in seconds), but real:
#: a pathological cell now reports OoT instead of stalling the table.
DEFAULT_OL_TIME_LIMIT = 120.0
DEFAULT_OG_TIME_LIMIT = 120.0


def _opt(options, key, default):
    value = (options or {}).get(key)
    return default if value is None else value


def _store_opt(options):
    """``store`` argument for :func:`prepare_locked` from cell options.

    ``options["prep_store"] = False`` opts a campaign out of the shared
    disk store (cells fall back to per-process preparation); anything
    else keeps the env-configured default.
    """
    return False if _opt(options, "prep_store", True) is False else None


def _serial_rows(expand, cell, aggregate, options):
    return aggregate([cell(c, options) for c in expand(options)], options)


# ----------------------------------------------------------------------
# Table I: benchmark details (published vs generated stand-ins).
# ----------------------------------------------------------------------

TABLE1_HEADER = (
    "Circuit", "#inputs", "#outputs", "#gates(paper)", "#gates(gen)",
    "#key inputs", "scale",
)


def table1_expand(options):
    circuits = _opt(options, "circuits", TABLE1_CIRCUITS)
    return [{"circuit": name} for name in circuits]


def table1_cell(cell, options):
    # Any corpus reference works here: bare names alias to gen:, and
    # corpus: netlists report their fixed (scale-independent) interface.
    name = cell["circuit"]
    resolved = resolve_circuit(name, scale=_opt(options, "scale", None))
    spec, host = resolved.spec, resolved.circuit
    return {
        "row": [
            name,
            len(host.inputs),
            len(host.outputs),
            spec.gates,
            host.num_gates,
            spec.key_width,
            resolved.scale or "-",
        ],
        "circuit": resolved.provenance(),
    }


def table1_aggregate(results, options):
    return TABLE1_HEADER, [tuple(r["row"]) for r in results]


def table1_rows(scale=None):
    """Table I: benchmark details (published vs generated stand-ins)."""
    return _serial_rows(
        table1_expand, table1_cell, table1_aggregate, {"scale": scale}
    )


# ----------------------------------------------------------------------
# Table II: OL attacks (SCOPE vs KRATT) on the ISCAS/ITC circuits.
# ----------------------------------------------------------------------

TABLE2_HEADER = (
    "Circuit", "Technique", "SCOPE cdk/dk", "SCOPE CPU",
    "KRATT cdk/dk", "KRATT CPU", "KRATT method",
)


def _ol_cell(locked, guesses, elapsed):
    score = score_key(locked, guesses)
    return f"{score.cdk}/{score.dk}", f"{elapsed:.2f}"


def table2_expand(options):
    circuits = _opt(options, "circuits", TABLE1_CIRCUITS)
    techniques = _opt(options, "techniques", TABLE2_TECHNIQUES)
    return [
        {"circuit": c, "technique": t} for c in circuits for t in techniques
    ]


def table2_cell(cell, options):
    circuit_name, technique = cell["circuit"], cell["technique"]
    scale = _opt(options, "scale", None)
    qbf_time_limit = _opt(options, "qbf_time_limit", 3.0)
    ol_time_limit = _opt(options, "ol_time_limit", DEFAULT_OL_TIME_LIMIT)
    prep = prepare_locked(circuit_name, technique, scale=scale,
                          store=_store_opt(options))
    with Timer() as t_scope:
        scope = scope_attack(
            prep.netlist, prep.locked.key_inputs, rule="preserve",
            time_limit=ol_time_limit, **_SCOPE_FAST,
        )
    scope_cell = _ol_cell(prep.locked, scope.guesses, t_scope.elapsed)
    with Timer() as t_kratt:
        result = kratt_ol_attack(
            prep.netlist, prep.locked.key_inputs,
            qbf_time_limit=qbf_time_limit,
            scope_kwargs=_SCOPE_FAST,
            technique=technique,
            time_limit=ol_time_limit,
        )
    kratt_cell = _ol_cell(prep.locked, result.key, t_kratt.elapsed)
    return {
        "row": [circuit_name, technique, *scope_cell, *kratt_cell,
                result.details.get("method", "-")],
        "attack": result.as_dict(),
        "circuit": prep.provenance(),
    }


def table2_aggregate(results, options):
    return TABLE2_HEADER, [tuple(r["row"]) for r in results]


def table2_rows(scale=None, circuits=TABLE1_CIRCUITS, techniques=TABLE2_TECHNIQUES,
                qbf_time_limit=3.0, ol_time_limit=DEFAULT_OL_TIME_LIMIT):
    """Table II: OL attacks (SCOPE vs KRATT) on the ISCAS/ITC circuits."""
    return _serial_rows(table2_expand, table2_cell, table2_aggregate, {
        "scale": scale,
        "circuits": circuits,
        "techniques": techniques,
        "qbf_time_limit": qbf_time_limit,
        "ol_time_limit": ol_time_limit,
    })


# ----------------------------------------------------------------------
# Table III: OG attacks (SAT / DDIP / AppSAT / KRATT).
# ----------------------------------------------------------------------

TABLE3_HEADER = (
    "Circuit", "Technique", "SAT", "DDIP", "AppSAT", "KRATT", "KRATT ok",
)


def table3_expand(options):
    circuits = _opt(options, "circuits", TABLE1_CIRCUITS)
    techniques = _opt(options, "techniques", TABLE2_TECHNIQUES)
    return [
        {"circuit": c, "technique": t} for c in circuits for t in techniques
    ]


def table3_cell(cell, options):
    circuit_name, technique = cell["circuit"], cell["technique"]
    scale = _opt(options, "scale", None)
    baseline_time_limit = _opt(options, "baseline_time_limit", 15.0)
    qbf_time_limit = _opt(options, "qbf_time_limit", 3.0)
    prep = prepare_locked(circuit_name, technique, scale=scale,
                          store=_store_opt(options))
    cells = []
    for attack in (sat_attack, ddip_attack, appsat_attack):
        oracle = Oracle(prep.locked.original)
        result = attack(
            prep.netlist, prep.locked.key_inputs, oracle,
            time_limit=baseline_time_limit, technique=technique,
        )
        if result.timed_out:
            cells.append("OoT")
        elif result.success and score_key(prep.locked, result.key).functional:
            cells.append(f"{result.elapsed:.2f}")
        else:
            cells.append("wrong" if result.key else "fail")
    oracle = Oracle(prep.locked.original)
    result = kratt_og_attack(
        prep.netlist, prep.locked.key_inputs, oracle,
        qbf_time_limit=qbf_time_limit, technique=technique,
        time_limit=_opt(options, "og_time_limit", DEFAULT_OG_TIME_LIMIT),
    )
    score = score_key(prep.locked, result.key)
    cells.append("OoT" if result.timed_out else f"{result.elapsed:.2f}")
    return {
        "row": [circuit_name, technique, *cells,
                "yes" if score.functional else "no"],
        "attack": result.as_dict(),
        "circuit": prep.provenance(),
    }


def table3_aggregate(results, options):
    return TABLE3_HEADER, [tuple(r["row"]) for r in results]


def table3_rows(scale=None, circuits=TABLE1_CIRCUITS, techniques=TABLE2_TECHNIQUES,
                baseline_time_limit=15.0, qbf_time_limit=3.0,
                og_time_limit=DEFAULT_OG_TIME_LIMIT):
    """Table III: OG attacks (SAT / DDIP / AppSAT / KRATT).

    ``baseline_time_limit`` is the scaled stand-in for the paper's 2-day
    limit; baselines hitting it report OoT, as in the paper.
    ``og_time_limit`` bounds each KRATT-OG run the same way.
    """
    return _serial_rows(table3_expand, table3_cell, table3_aggregate, {
        "scale": scale,
        "circuits": circuits,
        "techniques": techniques,
        "baseline_time_limit": baseline_time_limit,
        "qbf_time_limit": qbf_time_limit,
        "og_time_limit": og_time_limit,
    })


# ----------------------------------------------------------------------
# Table IV: OL attacks on Gen-Anti-SAT locked ITC'99 circuits.
# ----------------------------------------------------------------------

TABLE4_HEADER = (
    "Circuit", "SCOPE cdk/dk", "SCOPE CPU", "KRATT cdk/dk",
    "KRATT CPU", "KRATT method",
)


def table4_expand(options):
    circuits = _opt(options, "circuits", TABLE4_CIRCUITS)
    return [{"circuit": name} for name in circuits]


def table4_cell(cell, options):
    circuit_name = cell["circuit"]
    scale = _opt(options, "scale", None)
    qbf_time_limit = _opt(options, "qbf_time_limit", 3.0)
    ol_time_limit = _opt(options, "ol_time_limit", DEFAULT_OL_TIME_LIMIT)
    prep = prepare_locked(circuit_name, "genantisat", scale=scale,
                          store=_store_opt(options))
    with Timer() as t_scope:
        scope = scope_attack(
            prep.netlist, prep.locked.key_inputs, rule="preserve",
            time_limit=ol_time_limit, **_SCOPE_FAST,
        )
    scope_cell = _ol_cell(prep.locked, scope.guesses, t_scope.elapsed)
    with Timer() as t_kratt:
        result = kratt_ol_attack(
            prep.netlist, prep.locked.key_inputs,
            qbf_time_limit=qbf_time_limit, scope_kwargs=_SCOPE_FAST,
            technique="genantisat",
            time_limit=ol_time_limit,
        )
    kratt_cell = _ol_cell(prep.locked, result.key, t_kratt.elapsed)
    return {
        "row": [circuit_name, *scope_cell, *kratt_cell,
                result.details.get("method", "-")],
        "attack": result.as_dict(),
        "circuit": prep.provenance(),
    }


def table4_aggregate(results, options):
    return TABLE4_HEADER, [tuple(r["row"]) for r in results]


def table4_rows(scale=None, circuits=TABLE4_CIRCUITS, qbf_time_limit=3.0,
                ol_time_limit=DEFAULT_OL_TIME_LIMIT):
    """Table IV: OL attacks on Gen-Anti-SAT locked ITC'99 circuits."""
    return _serial_rows(table4_expand, table4_cell, table4_aggregate, {
        "scale": scale,
        "circuits": circuits,
        "qbf_time_limit": qbf_time_limit,
        "ol_time_limit": ol_time_limit,
    })


# ----------------------------------------------------------------------
# Table V: HeLLO: CTF'22 circuits — details plus OL and OG attacks.
# ----------------------------------------------------------------------

TABLE5_HEADER = (
    "Circuit", "#in", "#out", "#gates", "#keys", "h",
    "SCOPE cdk/dk", "KRATT-OL cdk/dk", "SAT", "KRATT-OG", "OG ok",
)


def table5_expand(options):
    circuits = _opt(options, "circuits", HELLO_CIRCUITS)
    return [{"circuit": name} for name in circuits]


def table5_cell(cell, options):
    name = cell["circuit"]
    scale = resolve_scale(_opt(options, "scale", None))
    baseline_time_limit = _opt(options, "baseline_time_limit", 30.0)
    qbf_time_limit = _opt(options, "qbf_time_limit", 3.0)
    ol_time_limit = _opt(options, "ol_time_limit", DEFAULT_OL_TIME_LIMIT)
    locked = hello_locked(name, scale=scale)
    netlist = resynthesize(locked.circuit, seed=1, effort=2)
    with Timer() as t_scope:
        scope = scope_attack(netlist, locked.key_inputs, rule="preserve",
                             time_limit=ol_time_limit, **_SCOPE_FAST)
    scope_score = score_key(locked, scope.guesses)
    result_ol = kratt_ol_attack(
        netlist, locked.key_inputs, qbf_time_limit=qbf_time_limit,
        scope_kwargs=_SCOPE_FAST, technique="sfll_hd",
        time_limit=ol_time_limit,
    )
    ol_score = score_key(locked, result_ol.key)
    oracle = Oracle(locked.original)
    result_sat = sat_attack(
        netlist, locked.key_inputs, oracle,
        time_limit=baseline_time_limit, technique="sfll_hd",
    )
    sat_cell = "OoT" if result_sat.timed_out else (
        f"{result_sat.elapsed:.2f}"
        if result_sat.success and score_key(locked, result_sat.key).functional
        else "wrong"
    )
    oracle = Oracle(locked.original)
    result_og = kratt_og_attack(
        netlist, locked.key_inputs, oracle,
        qbf_time_limit=qbf_time_limit, technique="sfll_hd",
        time_limit=_opt(options, "og_time_limit", DEFAULT_OG_TIME_LIMIT),
    )
    og_score = score_key(locked, result_og.key)
    return {
        "row": [
            name,
            len(locked.original.inputs),
            len(locked.original.outputs),
            netlist.num_gates,
            locked.key_width,
            HELLO_H[name],
            scope_score.as_row(),
            ol_score.as_row(),
            sat_cell,
            f"{result_og.elapsed:.2f}",
            "yes" if og_score.functional else "no",
        ],
        "attack": result_og.as_dict(),
    }


def table5_aggregate(results, options):
    return TABLE5_HEADER, [tuple(r["row"]) for r in results]


def table5_rows(scale=None, baseline_time_limit=30.0, qbf_time_limit=3.0,
                ol_time_limit=DEFAULT_OL_TIME_LIMIT,
                og_time_limit=DEFAULT_OG_TIME_LIMIT):
    """Table V: HeLLO: CTF'22 circuits — details plus OL and OG attacks."""
    return _serial_rows(table5_expand, table5_cell, table5_aggregate, {
        "scale": scale,
        "baseline_time_limit": baseline_time_limit,
        "qbf_time_limit": qbf_time_limit,
        "ol_time_limit": ol_time_limit,
        "og_time_limit": og_time_limit,
    })


# ----------------------------------------------------------------------
# Fig. 6: impact of resynthesis on KRATT's run-time (c6288 hosts).
# ----------------------------------------------------------------------

FIG6_HEADER = ("Technique", "variant", "effort", "delay_bias", "KRATT CPU", "ok")


def fig6_expand(options):
    techniques = _opt(options, "techniques", TABLE2_TECHNIQUES)
    variants = _opt(options, "variants", 10)
    return [
        {"technique": t, "variant": v}
        for t in techniques for v in range(variants)
    ]


def fig6_cell(cell, options):
    technique, v = cell["technique"], cell["variant"]
    scale = _opt(options, "scale", None)
    qbf_time_limit = _opt(options, "qbf_time_limit", 3.0)
    prep = prepare_locked("c6288", technique, scale=scale, resynth=False,
                          store=_store_opt(options))
    effort = 1 + (v % 3)
    delay_bias = (v % 5) / 4.0
    netlist = resynthesize(
        prep.locked.circuit, seed=100 + v, effort=effort,
        delay_bias=delay_bias,
    )
    oracle = Oracle(prep.locked.original)
    with Timer() as t:
        result = kratt_og_attack(
            netlist, prep.locked.key_inputs, oracle,
            qbf_time_limit=qbf_time_limit, technique=technique,
            time_limit=_opt(options, "og_time_limit", DEFAULT_OG_TIME_LIMIT),
        )
    score = score_key(prep.locked, result.key)
    return {
        "row": [technique, v, effort, f"{delay_bias:.2f}",
                f"{t.elapsed:.2f}", "yes" if score.functional else "no"],
        "technique": technique,
        "elapsed": t.elapsed,
        "attack": result.as_dict(),
        "circuit": prep.provenance(),
    }


def fig6_aggregate(results, options):
    """Variant rows in expansion order plus the per-technique summary."""
    rows = [tuple(r["row"]) for r in results]
    times = {}
    for r in results:
        times.setdefault(r["technique"], []).append(r["elapsed"])
    summary_rows = []
    for tech, series in times.items():
        mean = statistics.mean(series)
        std = statistics.pstdev(series)
        ratio = max(series) / max(min(series), 1e-9)
        summary_rows.append(
            (tech, "mean/std/ratio", "-", "-",
             f"{mean:.2f}/{std:.2f}/{ratio:.2f}", "-")
        )
    return FIG6_HEADER, rows + summary_rows


def fig6_rows(scale=None, variants=10, techniques=TABLE2_TECHNIQUES,
              qbf_time_limit=3.0, og_time_limit=DEFAULT_OG_TIME_LIMIT):
    """Fig. 6: impact of resynthesis on KRATT's run-time (c6288 hosts).

    Locks c6288 with each technique, produces ``variants`` functionally
    equivalent but structurally different netlists (seeded efforts and
    delay constraints), runs KRATT on each, and reports the run-time
    series plus the paper's summary statistics (mean, stddev, max/min).
    """
    return _serial_rows(fig6_expand, fig6_cell, fig6_aggregate, {
        "scale": scale,
        "variants": variants,
        "techniques": techniques,
        "qbf_time_limit": qbf_time_limit,
        "og_time_limit": og_time_limit,
    })


# ----------------------------------------------------------------------
# Valkyrie-repository-style census (Section IV, second experiment).
# ----------------------------------------------------------------------

VALKYRIE_HEADER = ("Circuit", "Technique", "synth seed", "method", "functional")

VALKYRIE_CIRCUITS = ("b14_C", "b15_C")
VALKYRIE_TECHNIQUES = SFLT_TECHNIQUES + ("ttlock", "cac")


def valkyrie_expand(options):
    circuits = _opt(options, "circuits", VALKYRIE_CIRCUITS)
    techniques = _opt(options, "techniques", VALKYRIE_TECHNIQUES)
    synth_seeds = _opt(options, "synth_seeds", (1, 2))
    return [
        {"circuit": c, "technique": t, "synth_seed": s}
        for c in circuits for t in techniques for s in synth_seeds
    ]


def valkyrie_cell(cell, options):
    circuit_name = cell["circuit"]
    technique = cell["technique"]
    synth_seed = cell["synth_seed"]
    scale = _opt(options, "scale", None)
    qbf_time_limit = _opt(options, "qbf_time_limit", 3.0)
    prep = prepare_locked(
        circuit_name, technique, scale=scale, synth_seed=synth_seed,
        store=_store_opt(options),
    )
    if technique in SFLT_TECHNIQUES:
        result = kratt_ol_attack(
            prep.netlist, prep.locked.key_inputs,
            qbf_time_limit=qbf_time_limit, scope_kwargs=_SCOPE_FAST,
            technique=technique,
            time_limit=_opt(options, "ol_time_limit", DEFAULT_OL_TIME_LIMIT),
        )
    else:
        oracle = Oracle(prep.locked.original)
        result = kratt_og_attack(
            prep.netlist, prep.locked.key_inputs, oracle,
            qbf_time_limit=qbf_time_limit, technique=technique,
            time_limit=_opt(options, "og_time_limit", DEFAULT_OG_TIME_LIMIT),
        )
    method = result.details.get("method", "-")
    score = score_key(prep.locked, result.key)
    return {
        "row": [circuit_name, technique, synth_seed, method,
                "yes" if score.functional else "no"],
        "method": method,
        "attack": result.as_dict(),
        "circuit": prep.provenance(),
    }


def valkyrie_aggregate(results, options):
    counts = {"qbf": 0, "structural": 0, "other": 0}
    rows = []
    for r in results:
        method = r["method"]
        if method == "qbf":
            counts["qbf"] += 1
        elif method == "og-structural":
            counts["structural"] += 1
        else:
            counts["other"] += 1
        rows.append(tuple(r["row"]))
    rows.append(("TOTAL", f"qbf={counts['qbf']}",
                 f"structural={counts['structural']}",
                 f"other={counts['other']}", ""))
    return VALKYRIE_HEADER, rows


def valkyrie_rows(scale=None, synth_seeds=(1, 2), qbf_time_limit=3.0,
                  circuits=VALKYRIE_CIRCUITS, key_widths=(None,),
                  ol_time_limit=DEFAULT_OL_TIME_LIMIT,
                  og_time_limit=DEFAULT_OG_TIME_LIMIT):
    """Valkyrie-repository-style census (Section IV, second experiment).

    Sweeps SFLTs and DFLTs over hosts and synthesis seeds; reports how
    each locked instance was broken (QBF witness for SFLTs, structural
    analysis for DFLTs) mirroring the paper's 720-circuit census at
    reproduction scale.
    """
    return _serial_rows(valkyrie_expand, valkyrie_cell, valkyrie_aggregate, {
        "scale": scale,
        "synth_seeds": synth_seeds,
        "qbf_time_limit": qbf_time_limit,
        "circuits": circuits,
        "ol_time_limit": ol_time_limit,
        "og_time_limit": og_time_limit,
    })


# ----------------------------------------------------------------------
# Single-attack grid: the `repro serve` job unit — one (circuit,
# technique, attack, key width, budget) per cell.
# ----------------------------------------------------------------------

ATTACK_HEADER = (
    "Circuit", "Technique", "Attack", "#keys", "status", "method",
    "functional", "CPU",
)

#: Attacks a job (or a direct ``--artifacts attack`` campaign) may name.
ATTACK_NAMES = ("kratt_ol", "kratt_og", "sat", "ddip", "appsat")

#: Option keys copied into every expanded cell's params.  A cell is
#: self-contained: two grids that expand to the same (circuit,
#: technique, attack, width, budget...) produce identical cells — and
#: therefore identical records — whether they came from a service job
#: or a direct campaign run.
_ATTACK_CELL_KEYS = (
    "key_width", "budget", "scale", "seed", "synth_seed", "qbf_time_limit",
)


def _listed(options, plural, singular, default):
    value = _opt(options, plural, None)
    if value is None:
        value = _opt(options, singular, default)
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


def attack_expand(options):
    circuits = _listed(options, "circuits", "circuit", "corpus:c17")
    techniques = _listed(options, "techniques", "technique", "sarlock")
    attacks = _listed(options, "attacks", "attack", "sat")
    for technique in techniques:
        if technique not in TECHNIQUES:
            raise ValueError(
                f"unknown technique {technique!r}; "
                f"known: {sorted(TECHNIQUES)}"
            )
    for attack in attacks:
        if attack not in ATTACK_NAMES:
            raise ValueError(
                f"unknown attack {attack!r}; known: {list(ATTACK_NAMES)}"
            )
    base = {
        k: (options or {}).get(k)
        for k in _ATTACK_CELL_KEYS
        if (options or {}).get(k) is not None
    }
    return [
        {"circuit": c, "technique": t, "attack": a, **base}
        for c in circuits for t in techniques for a in attacks
    ]


def attack_cell(cell, options):
    circuit_name = cell["circuit"]
    technique = cell["technique"]
    attack = cell["attack"]

    def param(key, default):
        value = cell.get(key)
        return _opt(options, key, default) if value is None else value

    budget = float(param("budget", DEFAULT_OG_TIME_LIMIT))
    qbf_time_limit = float(param("qbf_time_limit", 3.0))
    key_width = param("key_width", None)
    prep = prepare_locked(
        circuit_name, technique,
        scale=param("scale", None),
        seed=int(param("seed", 0)),
        synth_seed=int(param("synth_seed", 1)),
        key_width=None if key_width is None else int(key_width),
        store=_store_opt(options),
    )
    if attack == "kratt_ol":
        result = kratt_ol_attack(
            prep.netlist, prep.locked.key_inputs,
            qbf_time_limit=qbf_time_limit, scope_kwargs=_SCOPE_FAST,
            technique=technique, time_limit=budget,
        )
    elif attack == "kratt_og":
        oracle = Oracle(prep.locked.original)
        result = kratt_og_attack(
            prep.netlist, prep.locked.key_inputs, oracle,
            qbf_time_limit=qbf_time_limit, technique=technique,
            time_limit=budget,
        )
    else:
        runner = {"sat": sat_attack, "ddip": ddip_attack,
                  "appsat": appsat_attack}[attack]
        oracle = Oracle(prep.locked.original)
        result = runner(
            prep.netlist, prep.locked.key_inputs, oracle,
            time_limit=budget, technique=technique,
        )
    score = score_key(prep.locked, result.key)
    status = "OoT" if result.timed_out else (
        "ok" if result.success else "fail"
    )
    # The CPU column is appended at aggregation from ``elapsed`` so the
    # row itself — like the rest of the result — is run-invariant.
    return {
        "row": [circuit_name, technique, attack, prep.key_width, status,
                result.details.get("method", "-"),
                "yes" if score.functional else "no"],
        "elapsed": result.elapsed,
        "attack": result.as_dict(),
        "circuit": prep.provenance(),
    }


def attack_aggregate(results, options):
    rows = [
        tuple(r["row"]) + (f"{r.get('elapsed', 0.0):.2f}",)
        for r in results
    ]
    return ATTACK_HEADER, rows


def attack_rows(**options):
    """Single-attack grid, serially (see ``attack_expand`` for options)."""
    return _serial_rows(attack_expand, attack_cell, attack_aggregate, options)
