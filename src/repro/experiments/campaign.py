"""Parallel attack-campaign orchestrator.

A *campaign* regenerates one or more paper artifacts (Tables I-V,
Fig. 6, the Valkyrie-style census) from a declarative
:class:`CampaignSpec`.  The spec expands into a grid of independent
*cells* — the (circuit x technique x seed/variant) units the artifact
definitions in :mod:`repro.experiments.tables` decompose into — and the
orchestrator:

* shards the pending cells across a ``multiprocessing`` worker pool
  (``workers <= 1`` runs them in-process, which is what the unit-timed
  benchmark scripts use);
* persists every finished cell as one JSON record under
  ``<results_root>/<name>/cells/``, so an interrupted or killed campaign
  resumes by running only the missing cells;
* aggregates the completed grid back into the paper-style tables through
  the same ``aggregate`` functions the serial row builders use — the
  parallel path is bit-identical to the serial one by construction;
* enforces ``cell_timeout`` as a **hard** limit: with a timeout set,
  every cell runs in its own killable worker process, a cell exceeding
  the budget is terminated (SIGTERM, then SIGKILL) and persisted as a
  ``status="timeout"`` record, and resume treats that record as
  completed-with-timeout instead of retrying the pathological cell
  forever.  Timed-out cells are excluded from aggregation, so the
  remaining rows still match the serial path bit-for-bit.

The on-disk layout of a campaign ``<name>``::

    <results_root>/<name>/spec.json        # the expanded, resolved spec
    <results_root>/<name>/cells/<id>.json  # one record per finished cell
    <results_root>/<name>/<artifact>.txt   # rendered tables (report step)

This module is the seam future scaling work (async backends, distributed
sharding, remote result stores) plugs into: backends only need to map
``run one cell payload -> cell record``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import re
import signal
import time
import traceback
from collections import namedtuple
from dataclasses import dataclass, field, asdict

from .harness import format_table, prep_stats
from .prepstore import prep_store_info
from .records import (
    RETRYABLE_STATUSES,
    TERMINAL_STATUSES,
    make_cell_record,
    validate_cell_record,
)
from .queue import CellQueue, QueueConfig, QueueCorruption, queue_path
from . import faultinject, tables

__all__ = [
    "Artifact",
    "ARTIFACTS",
    "BACKENDS",
    "CampaignSpec",
    "CampaignCell",
    "CampaignResult",
    "CampaignError",
    "expand_cells",
    "run_campaign",
    "retry_campaign",
    "campaign_status",
    "aggregate_campaign",
    "write_reports",
    "load_spec",
    "sum_prep_stats",
    "DEFAULT_RESULTS_ROOT",
]

#: Execution backends ``run_campaign`` dispatches on.  "pool" is the
#: in-process/multiprocessing path; "queue" drains a durable work queue
#: with lease recovery, retry/backoff and poison-cell quarantine.
BACKENDS = ("pool", "queue")

#: Default landing zone for campaign results, next to the bench outputs.
DEFAULT_RESULTS_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))),
    "benchmarks", "results", "campaigns",
)

Artifact = namedtuple("Artifact", ["name", "title", "expand", "cell", "aggregate"])


# -- selftest: campaign-plumbing diagnostic cells ----------------------
# A grid of trivially cheap cells that can be made arbitrarily slow via
# options, used by the timeout-enforcement tests and the CI smoke job to
# exercise hard kill-on-timeout without dragging real attacks in.

_SELFTEST_HEADER = ("cell", "slept(s)")


def _selftest_expand(options):
    return [{"cell": i} for i in range(int((options or {}).get("cells", 2)))]


def _selftest_cell(cell, options):
    options = options or {}
    index = cell["cell"]
    # Deterministic failure injection for the retry/quarantine suites:
    # cells in ``fail_cells`` raise on every attempt numbered below
    # ``fail_until_attempt`` (attempts are 1-based; the queue worker
    # exports the current attempt via REPRO_CELL_ATTEMPT).
    if index in set(options.get("fail_cells") or ()):
        marker_dir = options.get("fail_marker_dir")
        if marker_dir is not None:
            # Environment-dependent failure: the cell fails until someone
            # "fixes the environment" by creating fixed-<index> — the
            # scenario ``repro campaign retry`` exists for.
            if not os.path.exists(os.path.join(marker_dir, f"fixed-{index}")):
                raise RuntimeError(
                    f"selftest: injected failure (cell {index}, unfixed)"
                )
        else:
            attempt = faultinject.current_attempt()
            if attempt < int(options.get("fail_until_attempt", 10 ** 9)):
                raise RuntimeError(
                    f"selftest: injected failure "
                    f"(cell {index}, attempt {attempt})"
                )
    # Worker-death injection: cells in ``kill_cells`` SIGKILL their own
    # process — once, when ``kill_marker_dir`` is set (a marker file
    # makes the next attempt survive), or on every attempt without it.
    if index in set(options.get("kill_cells") or ()):
        marker_dir = options.get("kill_marker_dir")
        marker = (
            os.path.join(marker_dir, f"killed-{index}") if marker_dir else None
        )
        if marker is None or not os.path.exists(marker):
            if marker is not None:
                with open(marker, "w"):
                    pass
            os.kill(os.getpid(), signal.SIGKILL)
    sleep_s = float(options.get("sleep_s", 0.0))
    slow = options.get("slow_cells")
    if slow is not None and index not in set(slow):
        sleep_s = 0.0
    if sleep_s:
        time.sleep(sleep_s)
    return {"row": [index, f"{sleep_s:.2f}"]}


def _selftest_aggregate(results, options):
    return _SELFTEST_HEADER, [tuple(r["row"]) for r in results]


#: Registry of runnable artifacts; every entry reuses the exact cell
#: functions behind the serial ``tableN_rows`` builders.
ARTIFACTS = {
    "table1": Artifact(
        "table1", "Table I: benchmark circuit details",
        tables.table1_expand, tables.table1_cell, tables.table1_aggregate,
    ),
    "table2": Artifact(
        "table2", "Table II: OL attacks on locked ISCAS'85/ITC'99",
        tables.table2_expand, tables.table2_cell, tables.table2_aggregate,
    ),
    "table3": Artifact(
        "table3", "Table III: OG attacks on locked ISCAS'85/ITC'99",
        tables.table3_expand, tables.table3_cell, tables.table3_aggregate,
    ),
    "table4": Artifact(
        "table4", "Table IV: OL attacks on Gen-Anti-SAT locked circuits",
        tables.table4_expand, tables.table4_cell, tables.table4_aggregate,
    ),
    "table5": Artifact(
        "table5", "Table V: HeLLO: CTF'22 SFLL circuits",
        tables.table5_expand, tables.table5_cell, tables.table5_aggregate,
    ),
    "fig6": Artifact(
        "fig6", "Fig. 6: KRATT run-time across resynthesized c6288 variants",
        tables.fig6_expand, tables.fig6_cell, tables.fig6_aggregate,
    ),
    "valkyrie": Artifact(
        "valkyrie", "Valkyrie-style census",
        tables.valkyrie_expand, tables.valkyrie_cell, tables.valkyrie_aggregate,
    ),
    "attack": Artifact(
        "attack", "Single-attack grid (the `repro serve` job unit)",
        tables.attack_expand, tables.attack_cell, tables.attack_aggregate,
    ),
    "selftest": Artifact(
        "selftest", "Campaign self-test cells (timeout smoke)",
        _selftest_expand, _selftest_cell, _selftest_aggregate,
    ),
}


class CampaignError(RuntimeError):
    """A campaign could not run or aggregate (bad spec, failed cells)."""


@dataclass
class CampaignSpec:
    """Declarative description of one campaign.

    ``options`` feeds every artifact's expand/cell/aggregate functions;
    recognised keys include ``scale``, ``circuits``, ``techniques``,
    ``synth_seeds``, ``variants``, ``qbf_time_limit``,
    ``baseline_time_limit``, ``ol_time_limit`` and ``og_time_limit``
    (artifacts ignore keys they do not use).

    ``cell_timeout`` (seconds) is a *hard* per-cell wall-clock limit:
    cells run in killable worker processes and are terminated and
    recorded as ``status="timeout"`` once it elapses.  ``None`` keeps
    the soft accounting-free behaviour.

    ``backend`` selects the execution layer: ``"pool"`` (default) is
    the in-process/multiprocessing path; ``"queue"`` serializes cells
    into a durable SQLite work queue drained by killable worker
    processes with lease recovery, bounded retries and poison-cell
    quarantine.  ``queue`` tunes that backend (see
    :class:`repro.experiments.queue.QueueConfig`: ``lease_ttl``,
    ``max_attempts``, ``backoff_base``, ...).
    """

    name: str
    artifacts: tuple = ("table1",)
    options: dict = field(default_factory=dict)
    workers: int = 0
    cell_timeout: float = None
    results_root: str = None
    mp_context: str = None  # "fork" | "spawn" | None = platform default
    backend: str = "pool"
    queue: dict = field(default_factory=dict)

    def __post_init__(self):
        if not re.fullmatch(r"[A-Za-z0-9._-]+", self.name or ""):
            raise CampaignError(
                f"campaign name {self.name!r} must be a filesystem-safe slug"
            )
        self.artifacts = tuple(self.artifacts)
        unknown = [a for a in self.artifacts if a not in ARTIFACTS]
        if unknown:
            raise CampaignError(
                f"unknown artifacts {unknown}; known: {sorted(ARTIFACTS)}"
            )
        if self.backend not in BACKENDS:
            raise CampaignError(
                f"unknown backend {self.backend!r}; known: {list(BACKENDS)}"
            )
        try:
            QueueConfig.from_dict(self.queue)
        except (TypeError, ValueError) as exc:
            raise CampaignError(f"bad queue config: {exc}") from None
        if self.results_root is None:
            self.results_root = DEFAULT_RESULTS_ROOT

    def queue_config(self):
        return QueueConfig.from_dict(self.queue)

    # -- persistence ---------------------------------------------------
    def to_dict(self):
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        known = {
            "name", "artifacts", "options", "workers", "cell_timeout",
            "results_root", "mp_context", "backend", "queue",
        }
        unknown = set(data) - known
        if unknown:
            raise CampaignError(f"unknown spec fields: {sorted(unknown)}")
        return cls(**data)

    @property
    def directory(self):
        return os.path.join(self.results_root, self.name)

    @property
    def cells_dir(self):
        return os.path.join(self.directory, "cells")

    def grid_fingerprint(self):
        """Canonical JSON of everything that determines the cell grid and
        the meaning of persisted cell records (artifacts + options)."""
        return json.dumps(
            {"artifacts": list(self.artifacts), "options": self.options},
            sort_keys=True, default=list,
        )

    def save(self):
        os.makedirs(self.directory, exist_ok=True)
        _atomic_write_json(os.path.join(self.directory, "spec.json"),
                           self.to_dict())


def load_spec(name=None, results_root=None, path=None):
    """Load a spec from an explicit JSON file or a campaign directory."""
    if path is None:
        root = results_root or DEFAULT_RESULTS_ROOT
        path = os.path.join(root, name, "spec.json")
    try:
        with open(path) as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise CampaignError(f"no campaign spec at {path}") from None
    spec = CampaignSpec.from_dict(data)
    if results_root is not None:
        spec.results_root = results_root
    return spec


@dataclass(frozen=True)
class CampaignCell:
    """One schedulable unit: an artifact cell plus its stable identity."""

    artifact: str
    index: int  # position within the artifact's expansion order
    cell_id: str
    params: dict


@dataclass
class CampaignResult:
    """Outcome of :func:`run_campaign`."""

    spec: CampaignSpec
    total: int
    ran: int
    skipped: int
    errors: list
    elapsed: float
    tables: dict = None  # artifact -> (header, rows); None while incomplete
    timeouts: list = field(default_factory=list)  # cell ids killed on timeout
    poisoned: list = field(default_factory=list)  # cell ids quarantined
    prep: dict = field(default_factory=dict)  # summed per-cell cache deltas

    @property
    def complete(self):
        return self.tables is not None

    def unwrap(self, artifact):
        """``(header, rows)`` of one artifact, or raise with cell tracebacks.

        The worker path captures per-cell exceptions into ``errors``;
        callers that want serial-style fail-loud semantics (the bench
        scripts) go through here so the original tracebacks surface.
        """
        if self.errors:
            details = "\n\n".join(
                f"--- {cell_id}\n{error}" for cell_id, error in self.errors
            )
            raise CampaignError(
                f"campaign {self.spec.name!r}: {len(self.errors)} cells "
                f"failed:\n{details}"
            )
        if self.timeouts:
            raise CampaignError(
                f"campaign {self.spec.name!r}: {len(self.timeouts)} cells "
                f"were killed on cell_timeout ({self.timeouts[:5]}); the "
                "aggregate is not serial-identical"
            )
        if self.poisoned:
            raise CampaignError(
                f"campaign {self.spec.name!r}: {len(self.poisoned)} cells "
                f"are quarantined as poisoned ({self.poisoned[:5]}); the "
                "aggregate is not serial-identical (see `repro campaign "
                "retry` to requeue them)"
            )
        if not self.complete:
            raise CampaignError(
                f"campaign {self.spec.name!r} is incomplete "
                f"({self.total - self.ran - self.skipped} cells pending)"
            )
        return self.tables[artifact]

    def summary(self):
        state = "complete" if self.complete else "partial"
        line = (
            f"campaign {self.spec.name}: {state}, cells total={self.total} "
            f"ran={self.ran} skipped={self.skipped} errors={len(self.errors)} "
            f"timeouts={len(self.timeouts)} "
            f"poisoned={len(self.poisoned)} ({self.elapsed:.1f}s)"
        )
        if self.prep:
            line += (
                f"\nprep: store hits={self.prep.get('store_hits', 0)} "
                f"misses={self.prep.get('store_misses', 0)} "
                f"puts={self.prep.get('store_puts', 0)} | "
                f"L1 hits={self.prep.get('l1_hits', 0)} "
                f"misses={self.prep.get('l1_misses', 0)}"
            )
        return line


def _slug(value):
    return re.sub(r"[^A-Za-z0-9._-]+", "_", str(value))


def _cell_id(artifact, params):
    parts = [artifact] + [
        f"{k}={_slug(v)}" for k, v in sorted(params.items())
    ]
    return "--".join(parts)


def expand_cells(spec):
    """Expand the spec into its full, deterministically ordered cell grid."""
    cells = []
    seen = set()
    for artifact_name in spec.artifacts:
        artifact = ARTIFACTS[artifact_name]
        for index, params in enumerate(artifact.expand(spec.options)):
            cell_id = _cell_id(artifact_name, params)
            if cell_id in seen:
                raise CampaignError(f"duplicate cell id {cell_id!r}")
            seen.add(cell_id)
            cells.append(CampaignCell(artifact_name, index, cell_id, params))
    return cells


def _atomic_write_json(path, payload):
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    os.replace(tmp, path)


def _read_cell_record(path):
    """Any valid canonical record on disk, or ``None``.

    Missing, truncated, corrupt, or schema-invalid files all read as
    ``None`` — a campaign killed mid-write leaves either no file (writes
    are atomic renames) or, on exotic filesystems, a truncated one.
    """
    try:
        with open(path) as handle:
            record = json.load(handle)
    except (OSError, ValueError):
        return None
    return validate_cell_record(record)


def _load_cell_record(path):
    """A *finished* cell record, or ``None`` (cell must run again).

    ``status="timeout"`` and ``status="poisoned"`` records count as
    finished: the cell was killed at ``cell_timeout`` or quarantined
    after repeated failures — rerunning it would stall every resume pass
    on the same pathological cell (``repro campaign retry`` requeues
    them explicitly).  ``status="error"`` records are forensics from a
    failed attempt, not completion markers: the cell stays pending.
    """
    record = _read_cell_record(path)
    if record is None or record["status"] not in TERMINAL_STATUSES:
        return None
    return record


def _prep_delta(before, after):
    """Per-cell preparation-cache counter delta (both dicts flat ints)."""
    return {k: after[k] - before.get(k, 0) for k in after}


def sum_prep_stats(records):
    """Fold the ``prep`` deltas of many cell records into one total.

    Tolerates records without a ``prep`` field (pre-store campaigns,
    ``status="timeout"`` records killed before accounting) and an empty
    record list — a campaign of only timed-out cells must still report.
    """
    total = {}
    for record in records:
        for key, value in (record.get("prep") or {}).items():
            if isinstance(value, (int, float)):
                total[key] = total.get(key, 0) + value
    return total


def _run_cell_payload(payload):
    """Execute one cell; module-level so worker pools can pickle it."""
    artifact_name, params, options = payload
    # Fault-injection site: a worker SIGKILLed the moment cell work
    # starts (no-op unless REPRO_FAULT_KILL_RATE is exported).
    faultinject.crash_point("mid_cell", _cell_id(artifact_name, params))
    start = time.monotonic()
    prep_before = prep_stats()
    try:
        result = ARTIFACTS[artifact_name].cell(params, options)
        status, error = "ok", None
    except Exception:
        result, status, error = None, "error", traceback.format_exc()
    # Cells that prepared a circuit report its provenance (qualified id,
    # source, content digest); lift it into the canonical record so
    # every backend persists it.
    circuit = result.get("circuit") if isinstance(result, dict) else None
    return make_cell_record(
        artifact=artifact_name,
        params=params,
        status=status,
        result=result,
        error=error,
        elapsed=time.monotonic() - start,
        prep=_prep_delta(prep_before, prep_stats()),
        circuit=circuit,
    )


def _pool_context(spec):
    if spec.mp_context:
        return multiprocessing.get_context(spec.mp_context)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


#: Sentinel the cell worker sends the moment it starts executing the
#: payload, so the parent bills ``cell_timeout`` against cell work, not
#: process bootstrap (interpreter start + imports under spawn contexts).
_CELL_STARTED = "__cell_started__"

#: Extra allowance for process bootstrap before the started sentinel
#: arrives; a child hung in imports is still killed, just not a healthy
#: spawn-context worker that spent seconds booting.
_BOOT_GRACE_S = 30.0

#: Sentinel for "the cell worker's pipe is closed and empty" — the
#: child exited (or was SIGKILLed) without sending a record.  Distinct
#: from ``None`` ("no message yet") so crash classification is
#: immediate instead of hinging on a grace-poll race.
_PIPE_CLOSED = "__pipe_closed__"


def _run_cell_child(payload, conn):
    """Per-cell worker-process entry point: run the cell, pipe the record."""
    conn.send(_CELL_STARTED)
    record = _run_cell_payload(payload)
    conn.send(record)
    conn.close()


def _kill_process(proc):
    """Terminate a cell worker, escalating to SIGKILL if it lingers."""
    proc.terminate()
    proc.join(1.0)
    if proc.is_alive():
        proc.kill()
        proc.join(1.0)


#: Poll interval of the hard-timeout scheduler; bounds how far past
#: ``cell_timeout`` a kill can land (well inside the ~2x-timeout budget
#: the tests assert).
_WATCHDOG_POLL_S = 0.02


def _run_cells_hard_timeout(spec, todo, payloads, finish):
    """Run cells in killable per-cell processes, enforcing ``cell_timeout``.

    Unlike the pool path, each cell gets its own process and pipe: a cell
    overrunning the budget is killed (terminate, then kill) without
    poisoning any shared queue, and the parent writes a
    ``status="timeout"`` record in its place so the shard keeps moving.
    Up to ``spec.workers`` cells run concurrently (``<= 1`` serializes
    them, still isolated so the kill semantics hold).

    Trade-off: per-cell processes start with a cold per-process
    :class:`~repro.experiments.harness.PrepCache`, so campaigns opting
    into ``cell_timeout`` repay each cell's preparation instead of
    amortizing it across a long-lived pool worker.  That is the price of
    a kill that cannot corrupt shared state; cross-campaign prep sharing
    is the ROADMAP's answer for getting the amortization back.
    """
    ctx = _pool_context(spec)
    limit = spec.cell_timeout
    workers = max(1, spec.workers or 1)
    pending = list(zip(todo, payloads))
    pending.reverse()  # pop() from the tail preserves expansion order
    active = []  # [proc, conn, cell, started_at, booted]

    def drain(conn):
        """Next message, ``None`` (nothing yet), or ``_PIPE_CLOSED``.

        A SIGKILLed child closes its pipe end with nothing buffered;
        ``poll`` reports readable and ``recv`` raises ``EOFError``
        immediately.  Returning a distinct sentinel (instead of folding
        EOF into "no message yet") lets the reaper classify the crash
        the moment it happens — no 0.5s grace poll, no race between the
        poll window and a record that will never arrive.
        """
        if not conn.poll(0):
            return None
        try:
            return conn.recv()
        except EOFError:
            return _PIPE_CLOSED

    def reap(entry):
        """Harvest one active slot; returns False while still running."""
        proc, conn, cell, started, booted = entry
        record = drain(conn)
        if record == _CELL_STARTED:
            # Payload execution begins now: restart the budget clock so
            # bootstrap (interpreter + imports under spawn) is not billed.
            started = entry[3] = time.monotonic()
            booted = entry[4] = True
            record = drain(conn)
        pipe_closed = record is _PIPE_CLOSED
        if pipe_closed:
            record = None
        if record is None and not pipe_closed and proc.is_alive():
            allowance = limit if booted else limit + _BOOT_GRACE_S
            if time.monotonic() - started <= allowance:
                return False
            _kill_process(proc)
            # A cell that finished in the kill window still gets its
            # real record (finish() marks it timed_out by elapsed).
            killed = drain(conn)
            if killed is None or killed is _PIPE_CLOSED:
                killed = make_cell_record(
                    artifact=cell.artifact,
                    params=cell.params,
                    status="timeout",
                    elapsed=time.monotonic() - started,
                    pid=proc.pid,
                    timed_out=True,
                    cell_timeout=limit,
                )
            record = killed
        elif record is None and not pipe_closed:
            # Exited with the pipe still open (exotic: teardown raced
            # the exit): give an in-flight record one last chance.
            if conn.poll(0.5):
                message = drain(conn)
                record = None if message is _PIPE_CLOSED else message
        proc.join(5.0)
        if proc.is_alive():
            _kill_process(proc)
        conn.close()
        if record is None:
            # Closed pipe / silent exit with no record: the worker died
            # mid-cell (SIGKILL, OOM, segfault).  Canonical crash
            # record — same shape as every other status, so the crash
            # is persisted for forensics and the cell stays retryable.
            record = make_cell_record(
                artifact=cell.artifact,
                params=cell.params,
                status="error",
                error=(
                    f"cell worker died without a result "
                    f"(exitcode {proc.exitcode})"
                ),
                elapsed=time.monotonic() - started,
                pid=proc.pid,
                cell_timeout=limit,
            )
        finish(cell, record)
        return True

    try:
        while pending or active:
            while pending and len(active) < workers:
                cell, payload = pending.pop()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_run_cell_child, args=(payload, child_conn)
                )
                proc.daemon = True
                proc.start()
                child_conn.close()
                active.append(
                    [proc, parent_conn, cell, time.monotonic(), False]
                )
            active = [entry for entry in active if not reap(entry)]
            if active:
                time.sleep(_WATCHDOG_POLL_S)
    finally:
        for proc, conn, _cell, _started, _booted in active:
            _kill_process(proc)
            conn.close()


def run_one_cell_hard(spec, cell, payload):
    """Run a single cell under the hard-timeout kill machinery.

    The queue worker's per-cell path: same killable child process, boot
    grace, watchdog and crash classification as the batch runner, for
    exactly one cell.  Returns the raw record (not yet finalized).
    """
    out = {}

    def finish(_cell, record):
        out["record"] = record

    _run_cells_hard_timeout(spec, [cell], [payload], finish)
    return out["record"]


def finalize_cell_record(record, cell_id, cell_timeout=None):
    """Stamp identity + accounting onto a raw record (canonical shape).

    Single exit point for every backend: ensures the record carries
    ``cell_id``, ``timed_out`` and ``cell_timeout`` no matter which
    runner produced it, so persisted records always validate.
    """
    record.setdefault("result", None)
    record.setdefault("error", None)
    record.setdefault("prep", {})
    record["cell_id"] = cell_id
    if cell_timeout is not None:
        record["cell_timeout"] = cell_timeout
        record["timed_out"] = (
            record["status"] == "timeout" or record["elapsed"] > cell_timeout
        )
    else:
        record.setdefault("cell_timeout", None)
        record["timed_out"] = bool(
            record.get("timed_out", record["status"] == "timeout")
        )
    return record


def run_campaign(spec, resume=True, fresh=False, limit=None, progress=None):
    """Run (or resume) a campaign; returns a :class:`CampaignResult`.

    Parameters
    ----------
    resume:
        Skip cells whose JSON record already exists (the default).  With
        ``False`` every cell is recomputed but records are still written,
        so a later ``status``/``report`` sees a complete campaign.
    fresh:
        Delete existing cell records first (implies nothing is resumed).
    limit:
        Stop after scheduling at most this many pending cells — the hook
        the smoke tests use to manufacture partial campaigns.
    progress:
        Optional callable receiving one line per finished cell.
    """
    start = time.monotonic()
    # A campaign directory binds cell records to one grid: silently
    # reusing records computed under different options would label stale
    # numbers with the new spec.  Changing the grid needs ``fresh`` (or a
    # new campaign name).
    spec_path = os.path.join(spec.directory, "spec.json")
    if not fresh and os.path.exists(spec_path):
        try:
            stored = CampaignSpec.from_dict(json.load(open(spec_path)))
        except (ValueError, CampaignError):
            stored = None
        if stored is not None and stored.grid_fingerprint() != spec.grid_fingerprint():
            raise CampaignError(
                f"campaign {spec.name!r} already has results for a different "
                "grid (artifacts/options changed); rerun with fresh=True "
                "(--fresh) to discard them, or pick a new campaign name"
            )
    spec.save()
    os.makedirs(spec.cells_dir, exist_ok=True)
    if fresh:
        for entry in os.listdir(spec.cells_dir):
            if entry.endswith(".json"):
                os.unlink(os.path.join(spec.cells_dir, entry))

    cells = expand_cells(spec)
    todo = []
    skipped = 0
    for cell in cells:
        path = os.path.join(spec.cells_dir, f"{cell.cell_id}.json")
        if resume and not fresh and _load_cell_record(path) is not None:
            skipped += 1
            continue
        todo.append(cell)
    if limit is not None:
        todo = todo[:limit]

    errors = []
    timeouts = []
    poisoned = []
    prep_totals = {}

    def account(cell_id, record, emit=True):
        for key, value in (record.get("prep") or {}).items():
            if isinstance(value, (int, float)):
                prep_totals[key] = prep_totals.get(key, 0) + value
        if record["status"] == "timeout":
            timeouts.append(cell_id)
        elif record["status"] == "poisoned":
            poisoned.append(cell_id)
        elif record["status"] == "error":
            errors.append((cell_id, record["error"]))
        if emit and progress is not None:
            progress(
                f"[{record['status']}] {cell_id} "
                f"({record['elapsed']:.2f}s, pid {record['pid']})"
            )

    def finish(cell, record):
        record = finalize_cell_record(
            record, cell.cell_id, cell_timeout=spec.cell_timeout
        )
        # Every status is persisted — error records are crash forensics
        # (resume still treats them as pending and re-runs the cell).
        _atomic_write_json(
            os.path.join(spec.cells_dir, f"{cell.cell_id}.json"), record
        )
        account(cell.cell_id, record)

    payloads = [(c.artifact, c.params, spec.options) for c in todo]
    if spec.backend == "queue" and todo:
        # Durable queue: cells become leased tasks drained by killable
        # worker processes (lease recovery, retry/backoff, quarantine).
        from .worker import run_queue_backend

        run_queue_backend(spec, cells, progress=progress)
        for cell in todo:
            path = os.path.join(spec.cells_dir, f"{cell.cell_id}.json")
            record = _read_cell_record(path)
            if record is None:
                errors.append((
                    cell.cell_id,
                    "queue drained but no valid record was published",
                ))
            else:
                # The queue orchestrator already emitted live per-cell
                # progress; only fold the record into the totals here.
                account(cell.cell_id, record, emit=False)
    elif spec.cell_timeout is not None and todo:
        # Hard limit: per-cell killable processes, regardless of workers.
        _run_cells_hard_timeout(spec, todo, payloads, finish)
    elif spec.workers and spec.workers > 1 and len(todo) > 1:
        ctx = _pool_context(spec)
        with ctx.Pool(processes=min(spec.workers, len(todo))) as pool:
            for cell, record in zip(
                todo, pool.imap(_run_cell_payload, payloads)
            ):
                finish(cell, record)
    else:
        for cell, payload in zip(todo, payloads):
            finish(cell, _run_cell_payload(payload))

    result = CampaignResult(
        spec=spec,
        total=len(cells),
        ran=len(todo) - len(errors),
        skipped=skipped,
        errors=errors,
        elapsed=time.monotonic() - start,
        timeouts=timeouts,
        poisoned=poisoned,
        prep=prep_totals,
    )
    if not errors and result.ran + result.skipped == result.total:
        result.tables = aggregate_campaign(spec, cells=cells)
    return result


def campaign_status(name=None, results_root=None, spec=None):
    """Completion state of a stored campaign.

    Returns a dict with per-artifact ``done``/``total`` counts, the ids
    of pending cells, the summed per-cell preparation-cache deltas
    (``prep``), and a snapshot of the shared disk store (``store``).
    All aggregates tolerate degenerate campaigns — zero records, or
    records that are *all* ``status="timeout"`` (killed cells carry no
    ``result`` and possibly no ``prep``) — without assuming at least one
    healthy cell exists.
    """
    if spec is None:
        spec = load_spec(name, results_root=results_root)
    cells = expand_cells(spec)
    per_artifact = {a: {"done": 0, "total": 0} for a in spec.artifacts}
    pending = []
    timeouts = []
    poisoned = []
    errored = []
    records = []
    healthy = 0
    for cell in cells:
        per_artifact[cell.artifact]["total"] += 1
        path = os.path.join(spec.cells_dir, f"{cell.cell_id}.json")
        record = _read_cell_record(path)
        if record is not None and record["status"] in TERMINAL_STATUSES:
            records.append(record)
            per_artifact[cell.artifact]["done"] += 1
            if record["status"] == "timeout":
                timeouts.append(cell.cell_id)
            elif record["status"] == "poisoned":
                poisoned.append(cell.cell_id)
            else:
                healthy += 1
        else:
            # An error record is a failed attempt's forensics: the cell
            # is still pending, but surfaced separately for `retry`.
            if record is not None:
                errored.append(cell.cell_id)
                records.append(record)
            pending.append(cell.cell_id)
    status = {
        "name": spec.name,
        "directory": spec.directory,
        "artifacts": per_artifact,
        "done": len(cells) - len(pending),
        "total": len(cells),
        "healthy": healthy,
        "pending": pending,
        "timeouts": timeouts,
        "poisoned": poisoned,
        "errored": errored,
        "prep": sum_prep_stats(records),
        "store": prep_store_info(),
    }
    if os.path.exists(queue_path(spec.directory)):
        try:
            queue = CellQueue(spec.directory, spec.queue_config())
            status["queue"] = queue.counts()
            queue.close()
        except QueueCorruption:
            status["queue"] = {"corrupt": True}
    return status


def aggregate_campaign(spec, cells=None):
    """Fold every persisted cell into ``{artifact: (header, rows)}``.

    Raises :class:`CampaignError` when records are missing — aggregation
    of a partial campaign would silently drop rows.  ``status="timeout"``
    and ``status="poisoned"`` records count as completed but contribute
    no row: the surviving rows are exactly what the serial path produces
    for the healthy cells.
    """
    if cells is None:
        cells = expand_cells(spec)
    by_artifact = {}
    missing = []
    for cell in cells:
        by_artifact.setdefault(cell.artifact, [])
        path = os.path.join(spec.cells_dir, f"{cell.cell_id}.json")
        record = _load_cell_record(path)
        if record is None:
            missing.append(cell.cell_id)
            continue
        if record["status"] != "ok":
            continue
        by_artifact[cell.artifact].append(record["result"])
    if missing:
        raise CampaignError(
            f"campaign {spec.name!r} is incomplete: {len(missing)} cells "
            f"missing (first: {missing[:3]}); run `repro campaign run` to "
            "finish it"
        )
    return {
        artifact: ARTIFACTS[artifact].aggregate(results, spec.options)
        for artifact, results in by_artifact.items()
    }


def retry_campaign(spec, statuses=None):
    """Requeue finished-but-unhealthy cells of an existing campaign.

    ``resume`` deliberately treats ``timeout`` and ``poisoned`` records
    as completed so one pathological cell cannot wedge every resume
    pass; this is the explicit opt-in to run them again.  Removes the
    selected records (the next ``run_campaign`` recomputes those cells)
    and resets their queue tasks to a fresh pending state when a queue
    exists.  Returns the requeued cell ids.

    ``statuses`` selects which classes to requeue, from
    ``("error", "timeout", "poisoned")`` (default: all three).
    """
    if statuses is None:
        statuses = RETRYABLE_STATUSES
    statuses = tuple(statuses)
    unknown = [s for s in statuses if s not in RETRYABLE_STATUSES]
    if unknown:
        raise CampaignError(
            f"cannot retry statuses {unknown}; retryable: "
            f"{list(RETRYABLE_STATUSES)}"
        )
    removed = []
    for cell in expand_cells(spec):
        path = os.path.join(spec.cells_dir, f"{cell.cell_id}.json")
        record = _read_cell_record(path)
        if record is not None and record["status"] in statuses:
            try:
                os.unlink(path)
            except FileNotFoundError:
                continue
            removed.append(cell.cell_id)
    if removed and os.path.exists(queue_path(spec.directory)):
        try:
            queue = CellQueue(spec.directory, spec.queue_config())
            queue.reset(removed)
            queue.close()
        except QueueCorruption:
            # The queue is derived state: drop it and let the next run
            # rebuild it from the spec plus the surviving records.
            CellQueue.destroy(spec.directory)
    return removed


def write_reports(spec, tables_by_artifact=None):
    """Render each artifact's table to ``<dir>/<artifact>.txt``."""
    if tables_by_artifact is None:
        tables_by_artifact = aggregate_campaign(spec)
    paths = []
    for artifact_name, (header, rows) in tables_by_artifact.items():
        text = format_table(ARTIFACTS[artifact_name].title, header, rows)
        path = os.path.join(spec.directory, f"{artifact_name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        paths.append(path)
    return paths
