"""Synthesis substrate: constant propagation, rewrites, resynthesis, sweeping."""

from .constprop import (
    CircuitFeatures,
    circuit_features,
    dead_code_eliminate,
    propagate_constants,
)
from .resynth import resynthesize
from .rewrite import (
    anonymize_internals,
    demorgan_sample,
    flatten_and_rebalance,
    merge_inverter_pairs,
    sweep_buffers,
    xor_decompose_sample,
)
from .sweep import implication_simplify, simplification_region, simulation_observations

__all__ = [
    "CircuitFeatures",
    "circuit_features",
    "dead_code_eliminate",
    "propagate_constants",
    "resynthesize",
    "anonymize_internals",
    "demorgan_sample",
    "flatten_and_rebalance",
    "merge_inverter_pairs",
    "sweep_buffers",
    "xor_decompose_sample",
    "implication_simplify",
    "simplification_region",
    "simulation_observations",
]
