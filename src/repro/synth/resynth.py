"""Resynthesis driver: the reproduction's stand-in for Cadence Genus.

The KRATT paper synthesizes every locked design "to break the regular
structure of the locking scheme" and, for Fig. 6, re-synthesizes one
circuit under 50 different effort/delay settings.  This driver composes
the seeded local rewrites of :mod:`repro.synth.rewrite` to the same
effect: locking comparators dissolve into plain gates, tree shapes and
polarities change, and internal names are discarded — while the Boolean
function is preserved (verified by SAT miter in the test suite).
"""

from __future__ import annotations

import random

from .constprop import dead_code_eliminate, propagate_constants
from .rewrite import (
    anonymize_internals,
    demorgan_sample,
    flatten_and_rebalance,
    merge_inverter_pairs,
    sweep_buffers,
    xor_decompose_sample,
)

__all__ = ["resynthesize"]


def resynthesize(
    circuit,
    seed=0,
    effort=2,
    delay_bias=0.5,
    xor_probability=0.6,
    demorgan_probability=0.3,
    anonymize=True,
    name=None,
):
    """Produce a functionally equivalent, structurally different netlist.

    Parameters
    ----------
    seed:
        Drives every random choice; same seed, same result.
    effort:
        Number of rewrite rounds (the paper's "design effort" knob).
        Higher effort mangles structure more.
    delay_bias:
        Probability that a flattened cluster is rebuilt balanced
        (depth-optimized) instead of as a chain — the "delay constraint"
        knob for Fig. 6.
    xor_probability / demorgan_probability:
        Sampling rates of the two polarity-churning rewrites per round.
    anonymize:
        Rename internal signals to opaque names, as synthesis does.
    """
    rng = random.Random(("resynth", seed, circuit.name).__str__())
    out = circuit.copy(name or f"{circuit.name}_syn{seed}")
    for _ in range(max(1, effort)):
        out = xor_decompose_sample(out, rng, xor_probability)
        out = demorgan_sample(out, rng, demorgan_probability)
        out = flatten_and_rebalance(out, rng, balance=delay_bias)
        out = merge_inverter_pairs(out)
        out = sweep_buffers(out)
    out, _ = propagate_constants(out, {})
    out, _ = dead_code_eliminate(out)
    if anonymize:
        out = anonymize_internals(out, rng)
    out.name = name or f"{circuit.name}_syn{seed}"
    out.validate()
    return out
