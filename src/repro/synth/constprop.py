"""Constant propagation, folding, and dead-code elimination.

This is the engine behind the SCOPE attack (which compares how much a
netlist simplifies when a key bit is pinned to 0 versus 1) and a helper
pass for the resynthesizer.  Folding is frontier-based: only the fanout
cone of the pinned signals is visited, so pinning one key input of a
20k-gate netlist costs time proportional to the affected region.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist.circuit import Circuit
from ..netlist.gate import Gate, GateType
from ..netlist.simulate import random_patterns

__all__ = [
    "propagate_constants",
    "dead_code_eliminate",
    "circuit_features",
    "CircuitFeatures",
]

_IDENTITY = {
    GateType.AND: 1,
    GateType.NAND: 1,
    GateType.OR: 0,
    GateType.NOR: 0,
    GateType.XOR: 0,
    GateType.XNOR: 0,
}

_ABSORBING = {
    GateType.AND: (0, GateType.CONST0),
    GateType.NAND: (0, GateType.CONST1),
    GateType.OR: (1, GateType.CONST1),
    GateType.NOR: (1, GateType.CONST0),
}

_BASE_IS_INVERTING = {
    GateType.AND: False,
    GateType.NAND: True,
    GateType.OR: False,
    GateType.NOR: True,
    GateType.XOR: False,
    GateType.XNOR: True,
}


def _const_of(gate, values):
    """Constant value (0/1) of a signal if known, else None."""
    if gate.gtype is GateType.CONST0:
        return 0
    if gate.gtype is GateType.CONST1:
        return 1
    return values.get(gate.name)


def _fold(gtype, fanins, values):
    """Fold one gate given known fanin constants.

    Returns ``("const", 0/1)``, ``("gate", gtype, fanins)`` (possibly
    simplified), or ``None`` when nothing changed.
    """
    const_in = [values.get(s) for s in fanins]
    if all(v is None for v in const_in):
        return None

    if gtype in (GateType.NOT, GateType.BUF):
        v = const_in[0]
        if v is None:
            return None
        return ("const", v ^ 1 if gtype is GateType.NOT else v)

    if gtype in _ABSORBING:
        absorb, _ = _ABSORBING[gtype]
        if any(v == absorb for v in const_in):
            return ("const", 1 - absorb if _BASE_IS_INVERTING[gtype] else absorb)

    if gtype in (GateType.XOR, GateType.XNOR):
        parity = 1 if gtype is GateType.XNOR else 0
        rest = []
        for sig, v in zip(fanins, const_in):
            if v is None:
                rest.append(sig)
            else:
                parity ^= v
        if not rest:
            return ("const", parity)
        if len(rest) == 1:
            return ("gate", GateType.NOT if parity else GateType.BUF, tuple(rest))
        gt = GateType.XNOR if parity else GateType.XOR
        if gt is gtype and len(rest) == len(fanins):
            return None
        return ("gate", gt, tuple(rest))

    if gtype in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
        identity = _IDENTITY[gtype]
        rest = [s for s, v in zip(fanins, const_in) if v is None]
        if not rest:
            # All-constant, none absorbing: result is the identity value
            # through the gate polarity.
            value = identity ^ (1 if _BASE_IS_INVERTING[gtype] else 0)
            return ("const", value)
        if len(rest) == len(fanins):
            return None
        if len(rest) == 1:
            gt = GateType.NOT if _BASE_IS_INVERTING[gtype] else GateType.BUF
            return ("gate", gt, tuple(rest))
        return ("gate", gtype, tuple(rest))

    return None


def propagate_constants(circuit, fixed, name=None):
    """Pin inputs to constants and fold the consequences.

    Parameters
    ----------
    fixed:
        Mapping input-name -> bool.  Pinned inputs are removed from the
        input list and become constant gates (names preserved).

    Returns ``(new_circuit, folded_count)`` where ``folded_count`` is the
    number of gates that became constants or simplified.
    """
    out = Circuit(name or f"{circuit.name}_cp")
    fixed = {k: int(bool(v)) for k, v in fixed.items()}
    for sig in circuit.inputs:
        if sig in fixed:
            out._gates[sig] = Gate(
                sig, GateType.CONST1 if fixed[sig] else GateType.CONST0, ()
            )
        else:
            out.add_input(sig)
    for gate in circuit.gates():
        out._gates[gate.name] = gate
    out._invalidate()
    out.set_outputs(list(circuit.outputs))

    values = dict(fixed)
    for gate in circuit.gates():
        if gate.gtype is GateType.CONST0:
            values[gate.name] = 0
        elif gate.gtype is GateType.CONST1:
            values[gate.name] = 1

    fanout = out.fanout_map()
    worklist = list(fixed)
    folded = 0
    seen_const = set(fixed)
    while worklist:
        sig = worklist.pop()
        for succ in fanout.get(sig, ()):
            gate = out._gates[succ]
            if gate.is_constant:
                continue
            result = _fold(gate.gtype, gate.fanins, values)
            if result is None:
                continue
            if result[0] == "const":
                value = result[1]
                out._gates[succ] = Gate(
                    succ, GateType.CONST1 if value else GateType.CONST0, ()
                )
                values[succ] = value
                folded += 1
                if succ not in seen_const:
                    seen_const.add(succ)
                    worklist.append(succ)
            else:
                _, gt, fanins = result
                if gt is not gate.gtype or fanins != gate.fanins:
                    folded += 1
                out._gates[succ] = Gate(succ, gt, fanins)
    out._invalidate()
    return out, folded


def dead_code_eliminate(circuit, keep_inputs=True):
    """Remove gates with no path to any primary output.

    Returns ``(new_circuit, removed_count)``.  Primary inputs are kept by
    default to preserve the interface.
    """
    from ..netlist.cone import transitive_fanin

    live = transitive_fanin(circuit, list(circuit.outputs)) if circuit.outputs else set()
    out = Circuit(circuit.name)
    removed = 0
    for sig in circuit.inputs:
        if keep_inputs or sig in live:
            out.add_input(sig)
    for gate in circuit.gates():
        if gate.name in live:
            out._gates[gate.name] = gate
        else:
            removed += 1
    out._invalidate()
    out.set_outputs(list(circuit.outputs))
    return out, removed


@dataclass(frozen=True)
class CircuitFeatures:
    """SCOPE-style synthesis features of a netlist.

    ``area`` counts logic gates (buffers and constants are free after
    technology mapping), ``depth`` is the logic depth, and ``power`` is a
    switching-activity proxy: the sum over signals of ``p*(1-p)`` with
    ``p`` estimated from random simulation.
    """

    area: int
    depth: int
    power: float

    def as_tuple(self):
        return (self.area, self.depth, self.power)


def circuit_features(circuit, power_patterns=64, rng=None):
    """Extract :class:`CircuitFeatures` from a netlist."""
    area = sum(
        1
        for g in circuit.gates()
        if g.gtype not in (GateType.BUF, GateType.CONST0, GateType.CONST1)
    )
    depth = circuit.depth()
    power = 0.0
    if power_patterns and circuit.inputs:
        words, mask = random_patterns(list(circuit.inputs), power_patterns, rng)
        values = circuit.evaluate(words, mask)
        for sig, word in values.items():
            p = bin(word).count("1") / power_patterns
            power += p * (1.0 - p)
    return CircuitFeatures(area=area, depth=depth, power=power)
