"""SAT-window implication simplification (a light "SAT sweeping" pass).

Commercial synthesis discovers non-local redundancies that plain constant
propagation cannot: if one fanin of an AND gate implies the other, the
gate collapses to a wire.  SCOPE's key-bit probing relies on exactly this
class of simplification (pinning a SARLock key bit to the *wrong* value
makes the comparator imply the mask, dissolving the mask cone).

The checks are windowed: each query encodes only the fan-in cone of the
two fanins up to ``window`` gates, treating cut signals as free inputs.
Freeing cut signals only weakens deductions, so every rewrite the pass
performs is globally sound.
"""

from __future__ import annotations

from ..budget import Deadline
from ..netlist.circuit import Circuit
from ..netlist.cone import transitive_fanout
from ..netlist.gate import Gate, GateType
from ..sat.cnf import CNF
from ..sat.solver import Solver
from ..sat.tseitin import encode_gate_clauses
from .constprop import dead_code_eliminate, propagate_constants

__all__ = ["implication_simplify", "simulation_observations", "simplification_region"]


def _window_cone(circuit, roots, window):
    """Signals of the combined fan-in cone, truncated to ``window`` gates.

    Returns ``(cone_signals, cut_signals)``: the gates included and the
    signals treated as free window inputs.
    """
    cone = set()
    cut = set()
    frontier = list(roots)
    while frontier and len(cone) < window:
        sig = frontier.pop(0)
        if sig in cone or sig in cut:
            continue
        gate = circuit.gate(sig)
        if gate.is_input or gate.is_constant:
            cut.add(sig)
            continue
        cone.add(sig)
        frontier.extend(gate.fanins)
    for sig in frontier:
        if sig not in cone:
            cut.add(sig)
    return cone, cut


def _encode_window(circuit, cone, cut, solver):
    varmap = {}
    for sig in cut:
        varmap[sig] = solver.new_var()
    order = [s for s in circuit.topological_order() if s in cone]
    for sig in order:
        varmap[sig] = solver.new_var()
    for sig in order:
        gate = circuit.gate(sig)
        cnf = CNF()
        cnf.num_vars = solver.num_vars
        encode_gate_clauses(cnf, gate.gtype, varmap[sig], [varmap[s] for s in gate.fanins])
        solver.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            solver.add_clause(clause)
    return varmap


_PROBE_COMBO = {"u->w": (1, 0), "w->u": (0, 1), "excl": (1, 1), "cover": (0, 0)}


def _possible_facts(u, w, observations):
    """Facts not already refuted by random-simulation observations.

    ``observations`` maps signal -> packed simulation word (with the word
    ``observations["__mask__"]`` giving the pattern mask).  A fact like
    ``u->w`` is refuted the moment the combination (u=1, w=0) is observed,
    so simulation screens out almost every false implication before any
    SAT call is spent.
    """
    if not observations or u not in observations or w not in observations:
        return set(_PROBE_COMBO)
    mask = observations["__mask__"]
    wu, ww = observations[u], observations[w]
    combos = {
        (1, 0): wu & (mask ^ ww),
        (0, 1): (mask ^ wu) & ww,
        (1, 1): wu & ww,
        (0, 0): (mask ^ wu) & (mask ^ ww),
    }
    return {fact for fact, combo in _PROBE_COMBO.items() if not combos[combo]}


def _relation(circuit, u, w, window, max_conflicts, candidates=None):
    """Classify the pair (u, w) inside a SAT window.

    Returns a set of proven facts among ``{"u->w", "w->u", "excl",
    "cover"}`` where ``excl`` means u AND w is unsatisfiable and ``cover``
    means NOT u AND NOT w is unsatisfiable.  ``candidates`` restricts
    which facts are probed (see :func:`_possible_facts`).
    """
    facts = set()
    probes = {
        "u->w": (1, -1),
        "w->u": (-1, 1),
        "excl": (1, 1),
        "cover": (-1, -1),
    }
    if candidates is not None:
        probes = {f: p for f, p in probes.items() if f in candidates}
    if not probes:
        return facts
    cone, cut = _window_cone(circuit, [u, w], window)
    solver = Solver()
    varmap = _encode_window(circuit, cone, cut, solver)
    vu, vw = varmap[u], varmap[w]
    for fact, (su, sw) in probes.items():
        status = solver.solve((su * vu, sw * vw), max_conflicts=max_conflicts)
        if status is False:
            facts.add(fact)
    return facts


def simulation_observations(circuit, patterns=96, rng=None):
    """Random-simulation signal values used to screen implication probes.

    Returns a dict of signal -> packed word plus ``"__mask__"``; feed it
    to :func:`implication_simplify`.  Valid as long as every rewrite is
    function-preserving (which all rewrites here are).
    """
    from ..netlist.simulate import random_patterns

    if not circuit.inputs:
        return None
    words, mask = random_patterns(list(circuit.inputs), patterns, rng)
    values = circuit.evaluate(words, mask)
    values["__mask__"] = mask
    return values


def implication_simplify(
    circuit,
    region=None,
    window=300,
    max_conflicts=3000,
    max_checks=200,
    observations=None,
    time_limit=None,
):
    """Simplify 2-input gates whose fanins are SAT-provably related.

    Parameters
    ----------
    region:
        Iterable of signal names to consider (default: all gates).  SCOPE
        passes the fanout cone of the pinned key input, top-down.
    window / max_conflicts / max_checks:
        Resource caps; anything unproven within them is left alone.
        ``max_checks`` counts *SAT-probed* gates only — gates screened out
        by simulation are free.
    observations:
        Output of :func:`simulation_observations`; skips probes already
        refuted by simulation.
    time_limit:
        Optional wall-clock cap (float seconds or a shared
        :class:`repro.budget.Deadline`): no new gate is probed once it
        expires.  Stopping early is sound — every rewrite already made
        is function-preserving on its own.

    Returns ``(new_circuit, rewrites)`` with the number of gates changed.
    """
    deadline = Deadline.of(time_limit)
    out = circuit.copy()
    names = list(region) if region is not None else [g.name for g in out.gates()]
    considered = 0
    rewrites = 0

    for sig in names:
        if considered >= max_checks:
            break
        if deadline.check(every_n=4):
            break
        if sig not in out:
            continue
        gate = out.gate(sig)
        if gate.is_input or len(gate.fanins) != 2:
            continue
        if gate.gtype not in (
            GateType.AND,
            GateType.NAND,
            GateType.OR,
            GateType.NOR,
            GateType.XOR,
            GateType.XNOR,
        ):
            continue
        u, w = gate.fanins
        candidates = _possible_facts(u, w, observations)
        if not candidates:
            continue
        considered += 1
        facts = _relation(out, u, w, window, max_conflicts, candidates)
        if not facts:
            continue
        new = None
        if gate.gtype in (GateType.AND, GateType.NAND):
            inverted = gate.gtype is GateType.NAND
            if "excl" in facts:
                new = (GateType.CONST1 if inverted else GateType.CONST0, ())
            elif "u->w" in facts:
                new = (GateType.NOT if inverted else GateType.BUF, (u,))
            elif "w->u" in facts:
                new = (GateType.NOT if inverted else GateType.BUF, (w,))
        elif gate.gtype in (GateType.OR, GateType.NOR):
            inverted = gate.gtype is GateType.NOR
            if "cover" in facts:
                new = (GateType.CONST0 if inverted else GateType.CONST1, ())
            elif "u->w" in facts:
                new = (GateType.NOT if inverted else GateType.BUF, (w,))
            elif "w->u" in facts:
                new = (GateType.NOT if inverted else GateType.BUF, (u,))
        else:  # XOR / XNOR
            inverted = gate.gtype is GateType.XNOR
            if "u->w" in facts and "w->u" in facts:  # u == w
                new = (GateType.CONST1 if inverted else GateType.CONST0, ())
            elif "excl" in facts and "cover" in facts:  # u == NOT w
                new = (GateType.CONST0 if inverted else GateType.CONST1, ())
        if new is None:
            continue
        out._gates[sig] = Gate(sig, new[0], new[1])
        out._invalidate()
        rewrites += 1

    if rewrites:
        out, _ = propagate_constants(out, {})
        out, _ = dead_code_eliminate(out)
    return out, rewrites


def simplification_region(circuit, sources, cap=4000):
    """Fanout region of pinned signals, ordered topologically, capped."""
    region = transitive_fanout(circuit, [s for s in sources if s in circuit])
    ordered = [s for s in circuit.topological_order() if s in region]
    return ordered[:cap]
