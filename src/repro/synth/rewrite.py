"""Function-preserving local rewrites.

Each pass takes a circuit and returns a rewritten copy with the same
primary inputs, outputs, and Boolean function.  The resynthesis driver
(:mod:`repro.synth.resynth`) composes them with a seed to generate
structurally diverse but functionally identical netlists — the stand-in
for running Cadence Genus with different efforts and delay constraints
(paper Fig. 6).
"""

from __future__ import annotations

import random

from ..netlist.circuit import Circuit
from ..netlist.gate import Gate, GateType

__all__ = [
    "sweep_buffers",
    "merge_inverter_pairs",
    "flatten_and_rebalance",
    "demorgan_sample",
    "xor_decompose_sample",
    "anonymize_internals",
]



def _namer(circuit, base):
    """Fresh-name generator that never collides with existing signals.

    Rewrite passes may run repeatedly on the same netlist; names from a
    previous round are still present, so a bare counter would collide and
    silently corrupt the circuit.
    """
    used = set(circuit.signals)
    counter = [0]

    def fresh(suffix=""):
        while True:
            name = f"{base}{counter[0]}{suffix}"
            counter[0] += 1
            if name not in used:
                used.add(name)
                return name

    return fresh


def _rebuild(circuit, gates, name=None):
    out = Circuit(name or circuit.name)
    for sig in circuit.inputs:
        out.add_input(sig)
    for gate in gates.values():
        if not gate.is_input:
            out._gates[gate.name] = gate
    out._invalidate()
    out.set_outputs(list(circuit.outputs))
    return out


def sweep_buffers(circuit):
    """Remove BUF gates by rewiring their fanout (outputs keep a BUF)."""
    protected = set(circuit.outputs)
    alias = {}
    gates = {}
    for sig in circuit.topological_order():
        gate = circuit.gate(sig)
        if gate.is_input:
            continue
        fanins = tuple(alias.get(s, s) for s in gate.fanins)
        if gate.gtype is GateType.BUF and sig not in protected:
            alias[sig] = fanins[0]
            continue
        gates[sig] = Gate(sig, gate.gtype, fanins)
    out = _rebuild(circuit, gates)
    out.validate()
    return out


def merge_inverter_pairs(circuit):
    """Collapse NOT(NOT(x)) chains and NOT-over-complement-gate pairs.

    ``NOT(NAND(..))`` becomes ``AND(..)`` (and the dual cases) when the
    inner gate has a single fanout; double inverters become buffers that
    the next sweep removes.
    """
    fanout = circuit.fanout_map()
    gates = {}
    inlined = set()
    complements = {
        GateType.NAND: GateType.AND,
        GateType.NOR: GateType.OR,
        GateType.XNOR: GateType.XOR,
        GateType.AND: GateType.NAND,
        GateType.OR: GateType.NOR,
        GateType.XOR: GateType.XNOR,
        GateType.NOT: GateType.BUF,
    }
    protected = set(circuit.outputs)
    for sig in circuit.topological_order():
        gate = circuit.gate(sig)
        if gate.is_input:
            continue
        if gate.gtype is GateType.NOT:
            inner_name = gate.fanins[0]
            # Use the current (possibly already rewritten) definition of
            # the inner gate so chained inlining never resurrects fanins
            # that a previous inlining step consumed.
            inner = gates.get(inner_name)
            if (
                inner is not None
                and inner.gtype in complements
                and len(fanout[inner_name]) == 1
                and inner_name not in protected
            ):
                gates[sig] = Gate(sig, complements[inner.gtype], inner.fanins)
                inlined.add(inner_name)
                continue
        gates[sig] = gate
    for name in inlined:
        gates.pop(name, None)
    out = _rebuild(circuit, gates)
    out.validate()
    return out


def _collect_cluster(circuit, fanout, root_name, gtype, protected):
    """Maximal same-type cluster under a root.

    Interior nodes must have a single fanout and not be primary outputs,
    so absorbing them into the root is safe.  Returns
    ``(leaves, interior)``: the external fanin signals and the absorbed
    gate names (root excluded).
    """
    leaves = []
    interior = []
    stack = list(circuit.gate(root_name).fanins)
    while stack:
        sig = stack.pop()
        gate = circuit.gate(sig)
        expandable = (
            not gate.is_input
            and gate.gtype is gtype
            and len(fanout[sig]) == 1
            and sig not in protected
        )
        if expandable:
            interior.append(sig)
            stack.extend(gate.fanins)
        else:
            leaves.append(sig)
    return leaves, interior


def flatten_and_rebalance(circuit, rng, balance=0.5):
    """Re-shape AND/OR/XOR clusters into randomized 2-input trees.

    ``balance`` is the probability that a cluster is rebuilt balanced
    (minimum depth) rather than as a skewed chain — the proxy for a
    synthesis delay constraint.
    """
    fanout = circuit.fanout_map()
    protected = set(circuit.outputs)
    flattenable = (GateType.AND, GateType.OR, GateType.XOR)
    consumed = set()
    gates = {}
    fresh = _namer(circuit, "rb")

    for sig in circuit.topological_order():
        gate = circuit.gate(sig)
        if gate.is_input or sig in consumed:
            continue
        if gate.gtype not in flattenable:
            gates[sig] = gate
            continue
        leaves, interior = _collect_cluster(circuit, fanout, sig, gate.gtype, protected)
        if len(leaves) <= 2:
            gates[sig] = gate
            continue
        consumed.update(interior)
        rng.shuffle(leaves)
        balanced = rng.random() < balance
        level = list(leaves)
        while len(level) > 2:
            if balanced:
                nxt = []
                for i in range(0, len(level) - 1, 2):
                    name = fresh()
                    gates[name] = Gate(name, gate.gtype, (level[i], level[i + 1]))
                    nxt.append(name)
                if len(level) % 2:
                    nxt.append(level[-1])
                level = nxt
            else:
                name = fresh()
                gates[name] = Gate(name, gate.gtype, (level[0], level[1]))
                level = [name] + level[2:]
        gates[sig] = Gate(sig, gate.gtype, tuple(level))

    # Consumed interior nodes may be referenced by untouched gates only if
    # they had fanout 1 into the cluster, so dropping them is safe.
    for name in consumed:
        gates.pop(name, None)
    out = _rebuild(circuit, gates)
    out.validate()
    return out


def demorgan_sample(circuit, rng, probability=0.25):
    """Apply De Morgan re-expressions to a random sample of gates.

    * ``NAND(a,b) -> OR(NOT a, NOT b)``
    * ``NOR(a,b)  -> AND(NOT a, NOT b)``
    * ``AND(a,b)  -> NOT(NOR(NOT a, NOT b)) == NOR(NOT a, NOT b)`` dual
    * ``OR(a,b)   -> NAND(NOT a, NOT b)``

    Only 2-input gates are touched; wide gates are handled by rebalancing
    first.  Gate output names are preserved.
    """
    gates = {}
    fresh = _namer(circuit, "dm")
    for sig in circuit.topological_order():
        gate = circuit.gate(sig)
        if gate.is_input:
            continue
        if len(gate.fanins) != 2 or rng.random() > probability:
            gates[sig] = gate
            continue
        a, b = gate.fanins
        na = fresh("_a")
        nb = fresh("_b")
        if gate.gtype is GateType.NAND:
            gates[na] = Gate(na, GateType.NOT, (a,))
            gates[nb] = Gate(nb, GateType.NOT, (b,))
            gates[sig] = Gate(sig, GateType.OR, (na, nb))
        elif gate.gtype is GateType.NOR:
            gates[na] = Gate(na, GateType.NOT, (a,))
            gates[nb] = Gate(nb, GateType.NOT, (b,))
            gates[sig] = Gate(sig, GateType.AND, (na, nb))
        elif gate.gtype is GateType.AND:
            gates[na] = Gate(na, GateType.NOT, (a,))
            gates[nb] = Gate(nb, GateType.NOT, (b,))
            gates[sig] = Gate(sig, GateType.NOR, (na, nb))
        elif gate.gtype is GateType.OR:
            gates[na] = Gate(na, GateType.NOT, (a,))
            gates[nb] = Gate(nb, GateType.NOT, (b,))
            gates[sig] = Gate(sig, GateType.NAND, (na, nb))
        else:
            gates[sig] = gate
    out = _rebuild(circuit, gates)
    out.validate()
    return out


def xor_decompose_sample(circuit, rng, probability=0.3):
    """Decompose sampled 2-input XOR/XNOR gates into AND/OR/NOT logic.

    ``XOR(a,b) -> OR(AND(a, NOT b), AND(NOT a, b))`` and the complement
    for XNOR.  This is the rewrite that most effectively hides locking
    structure, because the comparator XNORs dissolve into plain gates.
    """
    gates = {}
    fresh = _namer(circuit, "xd")
    for sig in circuit.topological_order():
        gate = circuit.gate(sig)
        if gate.is_input:
            continue
        if (
            gate.gtype not in (GateType.XOR, GateType.XNOR)
            or len(gate.fanins) != 2
            or rng.random() > probability
        ):
            gates[sig] = gate
            continue
        a, b = gate.fanins
        na = fresh("_na")
        nb = fresh("_nb")
        t1 = fresh("_t1")
        t2 = fresh("_t2")
        gates[na] = Gate(na, GateType.NOT, (a,))
        gates[nb] = Gate(nb, GateType.NOT, (b,))
        if gate.gtype is GateType.XOR:
            gates[t1] = Gate(t1, GateType.AND, (a, nb))
            gates[t2] = Gate(t2, GateType.AND, (na, b))
            gates[sig] = Gate(sig, GateType.OR, (t1, t2))
        else:
            gates[t1] = Gate(t1, GateType.OR, (a, nb))
            gates[t2] = Gate(t2, GateType.OR, (na, b))
            gates[sig] = Gate(sig, GateType.AND, (t1, t2))
    out = _rebuild(circuit, gates)
    out.validate()
    return out


def anonymize_internals(circuit, rng, prefix="n"):
    """Rename every internal signal to an opaque shuffled name.

    Primary inputs and outputs keep their names (the netlist interface a
    reverse engineer sees), everything else becomes ``n<i>`` — the way a
    synthesis tool discards RTL names.
    """
    protected = set(circuit.inputs) | set(circuit.outputs)
    internals = [s for s in circuit.signals if s not in protected]
    numbers = list(range(len(internals)))
    rng.shuffle(numbers)
    rename = {s: f"{prefix}{numbers[i]}" for i, s in enumerate(internals)}
    return circuit.renamed(rename)
